"""The CPU-scheduling framework: tasks, placements, the quantum loop.

This is the substrate for the paper's §1 motivating claim about the Linux
Energy-Aware Scheduler.  Time is divided into scheduling quanta; each
task demands some utilisation (in EAS capacity units) every quantum, the
scheduler places tasks on cores, cores pick an OPP for their load, and
the machine's ledger accumulates the true energy.  Missed work (demand
beyond the chosen core's capacity) is tracked as a QoS metric.

Schedulers differ only in how they *predict* a task's next-quantum
utilisation and therefore where they place it:
:class:`repro.managers.eas.EASScheduler` uses a PELT-style utilisation
EWMA (the kernel's proxy);
:class:`repro.managers.interface_scheduler.InterfaceScheduler` asks the
task's energy interface.  Everything else is shared, so measured energy
differences are attributable to prediction quality alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.errors import ReproError, SchedulerError
from repro.hardware.cpu import Core
from repro.hardware.dvfs import Governor, SchedutilGovernor
from repro.hardware.machine import Machine

if TYPE_CHECKING:
    from repro.core.session import EvalSession

__all__ = ["Task", "Placement", "ComponentHealth", "Scheduler",
           "SchedulerResult", "SchedulerSim"]


class ComponentHealth:
    """Tracks which components' interfaces repeatedly fault.

    The shared circuit-breaker for resource managers: a component
    (a core, a cluster node, a replica tier) whose evaluations fail
    ``threshold`` times in a row is *quarantined* — managers route
    around it — until ``probation`` quarantine checks have passed, at
    which point one half-open trial is allowed: a success clears the
    breaker, a failure re-arms it.
    """

    def __init__(self, threshold: int = 3, probation: int = 8) -> None:
        if threshold < 1:
            raise SchedulerError(
                f"quarantine threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.probation = probation
        self.failures: dict[str, int] = {}
        self.successes: dict[str, int] = {}
        self._consecutive: dict[str, int] = {}
        self._skips: dict[str, int] = {}

    def mark_failure(self, name: str) -> None:
        self.failures[name] = self.failures.get(name, 0) + 1
        self._consecutive[name] = self._consecutive.get(name, 0) + 1

    def mark_success(self, name: str) -> None:
        self.successes[name] = self.successes.get(name, 0) + 1
        self._consecutive[name] = 0
        self._skips.pop(name, None)

    def quarantined(self, name: str) -> bool:
        """Should the component be routed around right now?

        Stateful: while quarantined each check counts toward probation,
        and the check after probation expires is the half-open trial.
        """
        if self._consecutive.get(name, 0) < self.threshold:
            return False
        skips = self._skips.get(name, 0)
        if skips >= self.probation:
            self._skips[name] = 0
            return False  # half-open: let one attempt through
        self._skips[name] = skips + 1
        return True

    def healthy(self, names: "Sequence[str]") -> list[str]:
        """The subset not currently quarantined (all, if none are left —
        routing around *everything* is worse than trying)."""
        alive = [name for name in names if not self.quarantined(name)]
        return alive if alive else list(names)

    def stats(self) -> dict[str, dict[str, int]]:
        return {
            "failures": dict(self.failures),
            "successes": dict(self.successes),
            "quarantined": {
                name: count for name, count in self._consecutive.items()
                if count >= self.threshold},
        }

    def __repr__(self) -> str:
        bad = sum(1 for count in self._consecutive.values()
                  if count >= self.threshold)
        return f"ComponentHealth(tracked={len(self.failures)}, open={bad})"


@dataclass
class Task:
    """A schedulable task with a per-quantum utilisation demand.

    ``utilization_profile(quantum_index)`` returns the capacity units the
    task wants during that quantum — the ground truth the scheduler tries
    to predict.  ``energy_interface`` optionally carries the task's own
    energy/utilisation interface for interface-aware scheduling.
    """

    name: str
    utilization_profile: Callable[[int], float]
    energy_interface: object | None = None

    def demand(self, quantum_index: int) -> float:
        """Ground-truth utilisation for a quantum."""
        value = float(self.utilization_profile(quantum_index))
        if value < 0:
            raise SchedulerError(f"task {self.name!r} demanded negative "
                                 f"utilisation {value}")
        return value


@dataclass(frozen=True)
class Placement:
    """One task's assignment for one quantum."""

    task: Task
    core: Core


class Scheduler:
    """Strategy interface: predict utilisation and place tasks."""

    name = "scheduler"

    #: Optional :class:`~repro.core.session.EvalSession` whose hooks
    #: observe this scheduler's prediction work.  With a
    #: :class:`~repro.core.session.MemoHook` installed, per-core energy
    #: rates are memoized across quanta (placement repeatedly prices the
    #: same (core, load) points); ``None`` keeps the raw path.
    session: "EvalSession | None" = None

    #: Lazily created fault tracker (see :class:`ComponentHealth`);
    #: class-level None so plain subclasses need no __init__ changes.
    _health: ComponentHealth | None = None
    _demand_cache: dict | None = None

    def use_session(self, session: "EvalSession") -> "Scheduler":
        """Attach an evaluation session; returns ``self`` for chaining."""
        self.session = session
        return self

    @property
    def health(self) -> ComponentHealth:
        """Fault tracker for cores and task interfaces (lazily created)."""
        if self._health is None:
            self._health = ComponentHealth()
        return self._health

    def predict(self, task: Task, quantum_index: int) -> float:
        """Predicted utilisation of ``task`` for the coming quantum."""
        raise NotImplementedError

    def _predict_safe(self, task: Task, quantum_index: int) -> float:
        """``predict`` with graceful degradation on typed failures.

        A faulting task interface falls back to the last demand it did
        predict (then zero), and the failure is marked so repeatedly
        faulting interfaces show up in :attr:`health`.
        """
        if self._demand_cache is None:
            self._demand_cache = {}
        try:
            value = self.predict(task, quantum_index)
            if math.isnan(value):
                # A poisoned hardware reading, not an exception.
                raise ReproError("NaN prediction")
        except ReproError:
            self.health.mark_failure(f"task:{task.name}")
            return self._demand_cache.get(task.name, 0.0)
        self.health.mark_success(f"task:{task.name}")
        self._demand_cache[task.name] = value
        return value

    def place(self, tasks: Sequence[Task], cores: Sequence[Core],
              quantum_index: int) -> list[Placement]:
        """Assign every task to a core for the coming quantum.

        The default policy is the EAS-style greedy energy-delta placement:
        tasks (largest predicted demand first) go to the core where the
        *predicted marginal energy* of adding them is smallest, subject to
        fitting under the core's top capacity where possible.
        """
        loads: dict[str, float] = {core.name: 0.0 for core in cores}
        placements: list[Placement] = []
        alive = set(self.health.healthy([core.name for core in cores]))
        candidates = [core for core in cores if core.name in alive]
        ordered = sorted(
            tasks, key=lambda t: -self._predict_safe(t, quantum_index))
        for task in ordered:
            demand = self._predict_safe(task, quantum_index)
            best: tuple[tuple[bool, float], Core] | None = None
            for core in candidates:
                current = loads[core.name]
                delta = (self._core_energy_rate(core, current + demand)
                         - self._core_energy_rate(core, current))
                fits = (current + demand
                        <= core.spec.opp_table.max_capacity)
                # Prefer fitting cores; among them, least marginal energy.
                key = (not fits, delta)
                if best is None or key < best[0]:
                    best = (key, core)
            chosen = best[1]
            loads[chosen.name] += demand
            placements.append(Placement(task, chosen))
        return placements

    def _core_energy_rate(self, core: Core, utilization: float) -> float:
        """Predicted Watts for a core at the given load (EAS energy model).

        Routed through the attached session's memoization when one is set
        (the key is exact, so results are identical either way).
        """
        if self.session is not None:
            return self.session.memoized(
                ("core-rate", core.name, utilization),
                lambda: self._core_energy_rate_raw(core, utilization))
        return self._core_energy_rate_raw(core, utilization)

    def _core_energy_rate_raw(self, core: Core, utilization: float) -> float:
        if utilization <= 0:
            return core.spec.opp_table.min_opp.power_idle_w
        opp = core.spec.opp_table.lowest_fitting(
            min(utilization, core.spec.opp_table.max_capacity))
        busy_fraction = min(utilization / opp.capacity, 1.0)
        return (opp.power_active_w * busy_fraction
                + opp.power_idle_w * (1.0 - busy_fraction))

    def observe(self, task: Task, actual_utilization: float) -> None:
        """Feedback after a quantum (used by EWMA-based schedulers)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass
class SchedulerResult:
    """Outcome of one scheduling simulation."""

    scheduler: str
    quanta: int
    quantum_seconds: float
    energy_joules: float
    delivered_work: float = 0.0
    missed_work: float = 0.0
    placements_log: list[dict[str, str]] = field(default_factory=list)

    @property
    def miss_ratio(self) -> float:
        """Fraction of demanded work that missed its quantum."""
        demanded = self.delivered_work + self.missed_work
        if demanded == 0:
            return 0.0
        return self.missed_work / demanded

    @property
    def energy_per_work(self) -> float:
        """Joules per delivered capacity-second."""
        if self.delivered_work == 0:
            return float("inf")
        return self.energy_joules / self.delivered_work

    def __str__(self) -> str:
        return (f"{self.scheduler}: {self.energy_joules:.2f} J over "
                f"{self.quanta} quanta, miss ratio {self.miss_ratio:.1%}, "
                f"{self.energy_per_work * 1000:.2f} mJ per capacity-second")


class SchedulerSim:
    """Runs a scheduler against ground-truth task demands on a machine."""

    def __init__(self, machine: Machine, cores: Sequence[Core],
                 quantum_seconds: float = 0.05,
                 governor: Governor | None = None) -> None:
        if quantum_seconds <= 0:
            raise SchedulerError("the scheduling quantum must be positive")
        if not cores:
            raise SchedulerError("the simulation needs at least one core")
        self._machine = machine
        self._cores = list(cores)
        self.quantum_seconds = quantum_seconds
        self._governor = governor if governor is not None \
            else SchedutilGovernor()

    def run(self, scheduler: Scheduler, tasks: Sequence[Task],
            n_quanta: int, log_placements: bool = False) -> SchedulerResult:
        """Simulate ``n_quanta`` scheduling periods; returns the outcome.

        Work a core cannot complete within a quantum becomes *backlog*
        carried to the task's next quantum (a real-time task falling
        behind), so every scheduler eventually executes the same total
        demand; ``missed_work`` counts the capacity-seconds that ran late.
        Backlog still pending when the simulation ends is reported as
        missed too.
        """
        if n_quanta <= 0:
            raise SchedulerError("n_quanta must be positive")
        machine = self._machine
        t_run_start = machine.now
        delivered = 0.0
        missed = 0.0
        backlog: dict[str, float] = {task.name: 0.0 for task in tasks}
        log: list[dict[str, str]] = []
        for quantum_index in range(n_quanta):
            t_start = machine.now
            placements = scheduler.place(tasks, self._cores, quantum_index)
            core_load: dict[str, float] = {core.name: 0.0
                                           for core in self._cores}
            core_tasks: dict[str, list[tuple[Task, float]]] = {
                core.name: [] for core in self._cores}
            for placement in placements:
                demand = (placement.task.demand(quantum_index)
                          + backlog[placement.task.name]
                          / self.quantum_seconds)
                core_load[placement.core.name] += demand
                core_tasks[placement.core.name].append(
                    (placement.task, demand))
                scheduler.observe(placement.task,
                                  placement.task.demand(quantum_index))
            if log_placements:
                log.append({placement.task.name: placement.core.name
                            for placement in placements})
            for core in self._cores:
                load = core_load[core.name]
                core.apply_governor(self._governor, load)
                capacity = core.opp.capacity
                runnable = min(load, capacity)
                if runnable > 0:
                    work = runnable * self.quantum_seconds
                    core.execute_at(t_start, work, tag="quantum")
                    delivered += work
                shortfall = max(load - capacity, 0.0) * self.quantum_seconds
                missed += shortfall
                if load > 0:
                    # Distribute the shortfall over this core's tasks
                    # proportionally to their share of the load.
                    for task, demand in core_tasks[core.name]:
                        backlog[task.name] = shortfall * demand / load
                else:
                    for task, _demand in core_tasks[core.name]:
                        backlog[task.name] = 0.0
            machine.advance_to(t_start + self.quantum_seconds)
        energy = machine.ledger.energy_between(t_run_start, machine.now,
                                               domain="cpu")
        return SchedulerResult(
            scheduler=scheduler.name,
            quanta=n_quanta,
            quantum_seconds=self.quantum_seconds,
            energy_joules=energy,
            delivered_work=delivered,
            missed_work=missed + sum(backlog.values()),
            placements_log=log,
        )
