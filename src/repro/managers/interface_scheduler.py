"""An energy-interface-aware scheduler.

The counterpart to :class:`~repro.managers.eas.EASScheduler`: instead of
averaging the past, it *asks the task* what the next quantum will demand.
A task that ships an energy/utilisation interface (§2: "with deeper
visibility into future energy behavior, resource managers could make
better decisions") exposes its phase structure — e.g. a transcoder's
energy interface knows it alternates compute bursts and I/O troughs — so
the scheduler can place bursts on big cores and troughs on LITTLE ones
*before* the quantum starts.

The placement policy is identical to the base scheduler's; only the
prediction differs, so benchmark M1's energy gap isolates the value of
the interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.errors import SchedulerError
from repro.managers.base import Scheduler, Task

if TYPE_CHECKING:
    from repro.core.session import EvalSession

__all__ = ["InterfaceScheduler", "UtilizationInterface"]


class UtilizationInterface:
    """A task-side interface predicting per-quantum utilisation.

    This is the scheduling-facing slice of a task's energy interface: for
    a given quantum index it returns the capacity units the task will
    demand.  Tasks in :mod:`repro.apps.transcode` construct these from
    their declared phase structure.
    """

    def __init__(self, predictor, description: str = "") -> None:
        self._predictor = predictor
        self.description = description

    def utilization(self, quantum_index: int) -> float:
        """Predicted utilisation for ``quantum_index``."""
        value = float(self._predictor(quantum_index))
        if value < 0:
            raise SchedulerError(
                f"utilisation interface predicted a negative load {value}")
        return value


class InterfaceScheduler(Scheduler):
    """Placement driven by the tasks' own utilisation interfaces.

    Tasks without an interface fall back to an EWMA (the scheduler cannot
    conjure knowledge the task does not export), so mixed workloads are
    handled gracefully.
    """

    name = "interface"

    def __init__(self, fallback_decay: float = 0.66,
                 initial_utilization: float = 100.0,
                 session: "EvalSession | None" = None) -> None:
        self.fallback_decay = fallback_decay
        self.initial_utilization = initial_utilization
        self.session = session
        self._ewma: dict[str, float] = {}

    def predict(self, task: Task, quantum_index: int) -> float:
        interface = task.energy_interface
        if isinstance(interface, UtilizationInterface):
            return interface.utilization(quantum_index)
        return self._ewma.get(task.name, self.initial_utilization)

    def observe(self, task: Task, actual_utilization: float) -> None:
        previous = self._ewma.get(task.name, actual_utilization)
        self._ewma[task.name] = (self.fallback_decay * actual_utilization
                                 + (1.0 - self.fallback_decay) * previous)

    def __repr__(self) -> str:
        return "InterfaceScheduler()"


class OracleScheduler(Scheduler):
    """Upper bound: perfect knowledge of the next quantum's demand.

    Used by the M1 ablation to separate "the interface's prediction is
    good" from "the placement policy is good".
    """

    name = "oracle"

    def predict(self, task: Task, quantum_index: int) -> float:
        return task.demand(quantum_index)


__all__.append("OracleScheduler")
