"""A Kubernetes-like cluster scheduler: request-based vs interface-based.

§1 of the paper: "a memory-intensive application might consume less
energy on a big-memory node than on a compute node, but Kubernetes
wouldn't know ahead of time what the application will do."

The model: a cluster of heterogeneous nodes (compute-optimised vs
big-memory).  A pod's *execution behaviour* depends on whether its
working set fits the node's memory: if it does not, the pod thrashes —
its CPU work inflates by a miss penalty and it runs longer, burning more
energy.  A request-based scheduler sees only declared requests
(cpu/memory *reservations*) and bin-packs; an interface-based scheduler
evaluates each pod's energy interface against each candidate node and
packs by predicted Joules.

Energy model per node: ``idle power x makespan + Σ pod dynamic energy``,
with pods on a node running concurrently up to the node's core count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.errors import ReproError, SchedulerError
from repro.core.interface import EnergyInterface
from repro.core.predict import resolve_backend
from repro.core.units import Energy
from repro.managers.base import ComponentHealth

if TYPE_CHECKING:
    from repro.core.session import EvalSession

__all__ = ["NodeType", "Node", "PodSpec", "PodEnergyInterface",
           "ClusterScheduler", "RequestScheduler", "InterfacePackingScheduler",
           "ClusterOutcome", "run_cluster"]


@dataclass(frozen=True)
class NodeType:
    """A node flavour: capacity and power characteristics."""

    name: str
    cores: int
    memory_gb: float
    core_throughput: float = 1.0        # work units per second per core
    idle_power_w: float = 60.0
    core_active_power_w: float = 15.0   # extra Watts per busy core
    dram_power_per_gb_w: float = 0.4

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.memory_gb <= 0:
            raise SchedulerError(f"node type {self.name!r} has no capacity")


@dataclass
class Node:
    """One provisioned node and the pods placed on it."""

    name: str
    node_type: NodeType
    pods: list["PodSpec"] = field(default_factory=list)

    def memory_used(self) -> float:
        """GB of working set resident (capped at physical memory)."""
        return sum(pod.working_set_gb for pod in self.pods)


@dataclass(frozen=True)
class PodSpec:
    """A pod: declared requests vs actual behaviour.

    ``cpu_request`` / ``memory_request_gb`` are what the manifest says;
    ``cpu_work`` (work units) and ``working_set_gb`` are what the pod
    actually does — visible to an energy interface, invisible to a
    request-based scheduler.  ``miss_penalty`` multiplies CPU work when
    the working set does not fit the node.
    """

    name: str
    cpu_request: float
    memory_request_gb: float
    cpu_work: float
    working_set_gb: float
    miss_penalty: float = 3.0

    def effective_work(self, fits_in_memory: bool) -> float:
        """Actual work units, inflated when thrashing."""
        return self.cpu_work if fits_in_memory else \
            self.cpu_work * self.miss_penalty


class PodEnergyInterface(EnergyInterface):
    """A pod's energy interface: energy on a candidate node type.

    This is the §1 fix: the interface takes the *node type* (i.e. the
    configuration) as input and reports energy before any deployment.
    """

    def __init__(self, pod: PodSpec) -> None:
        super().__init__(f"E_pod_{pod.name}")
        self.pod = pod

    def E_run(self, node_type: NodeType, resident_gb: float = 0.0) -> Energy:
        """Energy to run the pod on ``node_type`` given existing residency."""
        fits = (resident_gb + self.pod.working_set_gb
                <= node_type.memory_gb)
        work = self.pod.effective_work(fits)
        duration = work / node_type.core_throughput
        dynamic = node_type.core_active_power_w * duration
        dram = (node_type.dram_power_per_gb_w
                * min(self.pod.working_set_gb, node_type.memory_gb) * duration)
        return Energy(dynamic + dram)

    def E_duration(self, node_type: NodeType, resident_gb: float = 0.0
                   ) -> float:
        """Seconds the pod occupies a core on ``node_type``."""
        fits = (resident_gb + self.pod.working_set_gb
                <= node_type.memory_gb)
        return self.pod.effective_work(fits) / node_type.core_throughput


class ClusterScheduler:
    """Strategy: place each pod on one of the available nodes."""

    name = "cluster-scheduler"

    def place(self, pods: list[PodSpec], nodes: list[Node]) -> None:
        raise NotImplementedError


class RequestScheduler(ClusterScheduler):
    """The Kubernetes default view: bin-pack declared requests, first fit.

    Pods are sorted by declared CPU request (descending) and placed on the
    first node with spare *requested* CPU and memory — actual behaviour is
    invisible, exactly as the paper complains.
    """

    name = "request-based"

    def place(self, pods: list[PodSpec], nodes: list[Node]) -> None:
        for pod in sorted(pods, key=lambda p: -p.cpu_request):
            for node in nodes:
                cpu_used = sum(p.cpu_request for p in node.pods)
                mem_used = sum(p.memory_request_gb for p in node.pods)
                if (cpu_used + pod.cpu_request <= node.node_type.cores
                        and mem_used + pod.memory_request_gb
                        <= node.node_type.memory_gb):
                    node.pods.append(pod)
                    break
            else:
                raise SchedulerError(f"no node fits pod {pod.name!r}")


class InterfacePackingScheduler(ClusterScheduler):
    """Energy-interface-driven placement: minimise predicted Joules.

    With a ``session``, every candidate evaluation flows through its
    hook chain — placement decisions get memoized per
    ``(pod, node type, residency)`` and show up in span traces.
    ``NodeType`` is a frozen dataclass, so it is a sound memo key.
    """

    name = "interface-based"

    def __init__(self, session: "EvalSession | None" = None,
                 health: ComponentHealth | None = None) -> None:
        self.session = session
        self.health = health if health is not None else ComponentHealth()

    def _predict(self, interface: PodEnergyInterface, node: Node) -> float:
        """Predicted Joules for a pod on a node, degrading on faults.

        A session evaluation that raises a typed error falls back to the
        closed-form ``E_run`` — the pessimism-free §4 bound the interface
        itself defines — and the node is marked so repeatedly faulting
        evaluations quarantine it out of candidate sets.
        """
        resident = node.memory_used()
        call = interface("E_run", node.node_type, resident)
        if self.session is not None:
            backend = self.session.backend
            try:
                joules = backend.mean(call, session=self.session)
                if math.isnan(joules):
                    # A poisoned hardware reading, not an exception.
                    raise ReproError("NaN prediction")
            except ReproError:
                self.health.mark_failure(node.name)
                return backend.closed_form(call)
            self.health.mark_success(node.name)
            return joules
        return resolve_backend(None).closed_form(call)

    def place(self, pods: list[PodSpec], nodes: list[Node]) -> None:
        for pod in sorted(pods, key=lambda p: -p.cpu_work):
            interface = PodEnergyInterface(pod)
            alive = set(self.health.healthy([node.name for node in nodes]))
            best: tuple[float, Node] | None = None
            for node in nodes:
                if node.name not in alive:
                    continue
                cpu_used = sum(p.cpu_request for p in node.pods)
                if cpu_used + pod.cpu_request > node.node_type.cores:
                    continue
                predicted = self._predict(interface, node)
                if best is None or predicted < best[0]:
                    best = (predicted, node)
            if best is None:
                raise SchedulerError(f"no node fits pod {pod.name!r}")
            best[1].pods.append(pod)


@dataclass
class ClusterOutcome:
    """Measured result of running all placed pods to completion."""

    scheduler: str
    total_energy_joules: float
    makespan_seconds: float
    per_node: dict[str, float]

    def __str__(self) -> str:
        return (f"{self.scheduler}: {self.total_energy_joules:.0f} J, "
                f"makespan {self.makespan_seconds:.0f} s")


def run_cluster(scheduler: ClusterScheduler, pods: list[PodSpec],
                nodes: list[Node],
                session: "EvalSession | None" = None) -> ClusterOutcome:
    """Place pods, simulate execution, return ground-truth energy.

    Pods on a node run on its cores (list-scheduled, longest first);
    the node draws idle power for the whole makespan plus per-core active
    power while pods run.  A ``session`` threads the ground-truth
    evaluations through its hooks (sharing the placement memo, since
    interfaces are keyed by pod name and the inputs repeat).
    """
    for node in nodes:
        node.pods.clear()
    scheduler.place(pods, nodes)
    per_node: dict[str, float] = {}
    makespan = 0.0
    for node in nodes:
        node_type = node.node_type
        resident = 0.0
        durations = []
        dynamic_energy = 0.0
        for pod in sorted(node.pods, key=lambda p: -p.cpu_work):
            interface = PodEnergyInterface(pod)
            durations.append(interface.E_duration(node_type, resident))
            call = interface("E_run", node_type, resident)
            if session is not None:
                try:
                    joules = session.backend.mean(call, session=session)
                    if math.isnan(joules):
                        raise ReproError("NaN prediction")
                    dynamic_energy += joules
                except ReproError:
                    # Ground truth must not depend on the evaluation
                    # substrate surviving: fall back to the closed form.
                    dynamic_energy += session.backend.closed_form(call)
            else:
                dynamic_energy += resolve_backend(None).closed_form(call)
            resident += pod.working_set_gb
        # List-schedule durations onto the node's cores.
        core_finish = [0.0] * node_type.cores
        for duration in sorted(durations, reverse=True):
            index = min(range(node_type.cores), key=lambda i: core_finish[i])
            core_finish[index] += duration
        node_makespan = max(core_finish) if durations else 0.0
        energy = node_type.idle_power_w * node_makespan + dynamic_energy
        per_node[node.name] = energy
        makespan = max(makespan, node_makespan)
    # Idle nodes still draw power until the cluster finishes.
    total = 0.0
    for node in nodes:
        node_energy = per_node[node.name]
        if not node.pods:
            node_energy = node.node_type.idle_power_w * makespan
            per_node[node.name] = node_energy
        total += node_energy
    return ClusterOutcome(
        scheduler=scheduler.name,
        total_energy_joules=total,
        makespan_seconds=makespan,
        per_node=per_node,
    )
