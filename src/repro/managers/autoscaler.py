"""Replica autoscaling: reactive thresholds vs energy interfaces.

A service's replica count is a resource-management decision with a
direct energy price: every warm replica burns idle power, every
scale-up pays a startup cost, and too few replicas drop traffic.  A
reactive autoscaler (the Kubernetes-HPA pattern) follows *observed*
utilisation and therefore lags every load swing — it burns replicas
after the rush is over and sheds traffic when the rush begins.

With energy clarity the scaler evaluates, for each candidate replica
count, the *predicted* energy and overload of the coming interval —
using the workload's arrival interface (diurnal shape is a property of
the service, knowable ahead of time) and the replica's energy interface.
This module implements both and the simulation that compares them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.errors import ReproError, SchedulerError
from repro.core.interface import EnergyInterface
from repro.core.predict import resolve_backend
from repro.core.units import Energy
from repro.managers.base import ComponentHealth

if TYPE_CHECKING:
    from repro.core.session import EvalSession

__all__ = ["ReplicaSpec", "ScalingResult", "Autoscaler",
           "ReactiveAutoscaler", "InterfaceAutoscaler",
           "ReplicaConfigInterface", "AutoscaleSim",
           "diurnal_profile"]


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica's capacity and energy characteristics."""

    capacity_rps: float = 100.0
    power_idle_w: float = 35.0
    joules_per_request: float = 0.8
    startup_energy_j: float = 900.0     # image pull, JIT warm-up
    startup_intervals: int = 1          # intervals before it serves

    def __post_init__(self) -> None:
        if self.capacity_rps <= 0:
            raise SchedulerError("replica capacity must be positive")
        if min(self.power_idle_w, self.joules_per_request,
               self.startup_energy_j) < 0:
            raise SchedulerError("replica energy terms must be >= 0")
        if self.startup_intervals < 0:
            raise SchedulerError("startup_intervals must be >= 0")


@dataclass
class ScalingResult:
    """Outcome of one autoscaling simulation."""

    scaler: str
    intervals: int
    interval_seconds: float
    energy_joules: float = 0.0
    served_requests: float = 0.0
    dropped_requests: float = 0.0
    replica_intervals: int = 0
    scale_ups: int = 0

    @property
    def drop_ratio(self) -> float:
        """Fraction of offered traffic that found no capacity."""
        offered = self.served_requests + self.dropped_requests
        return self.dropped_requests / offered if offered else 0.0

    @property
    def joules_per_request(self) -> float:
        """Total energy per served request."""
        if self.served_requests == 0:
            return float("inf")
        return self.energy_joules / self.served_requests

    def __str__(self) -> str:
        return (f"{self.scaler}: {self.energy_joules / 1000:.1f} kJ, "
                f"drops {self.drop_ratio:.2%}, "
                f"{self.joules_per_request:.2f} J/request, "
                f"{self.scale_ups} scale-ups")


class Autoscaler:
    """Strategy: choose the replica count for the coming interval."""

    name = "autoscaler"

    def decide(self, interval_index: int, observed_rps: float,
               current_replicas: int) -> int:
        raise NotImplementedError


class ReactiveAutoscaler(Autoscaler):
    """HPA-style: size for the *last* interval's observed load."""

    name = "reactive"

    def __init__(self, spec: ReplicaSpec, target_utilization: float = 0.7,
                 min_replicas: int = 1, max_replicas: int = 64) -> None:
        if not 0.0 < target_utilization <= 1.0:
            raise SchedulerError("target utilisation must be in (0, 1]")
        self.spec = spec
        self.target_utilization = target_utilization
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas

    def decide(self, interval_index: int, observed_rps: float,
               current_replicas: int) -> int:
        wanted = math.ceil(observed_rps
                           / (self.spec.capacity_rps
                              * self.target_utilization))
        return max(self.min_replicas, min(wanted, self.max_replicas))


class ReplicaConfigInterface(EnergyInterface):
    """The energy interface of a replica *configuration* (§1's fix).

    Input is the candidate configuration — replica count, predicted
    arrival rate, current count — and the return value is the interval's
    predicted cost in Joules (idle + dynamic + startup amortisation +
    drop penalty priced as energy).  Making this a first-class interface
    lets autoscaling predictions flow through an
    :class:`~repro.core.session.EvalSession` like every other layer:
    memoized across the periodic diurnal profile, visible in span traces.
    """

    def __init__(self, spec: ReplicaSpec, interval_seconds: float,
                 drop_penalty_j: float) -> None:
        super().__init__("replica_config")
        self.spec = spec
        self.interval_seconds = interval_seconds
        self.drop_penalty_j = drop_penalty_j

    def E_interval(self, replicas: int, rps: float,
                   current_replicas: int) -> Energy:
        """Predicted Joules of one interval under this configuration."""
        spec = self.spec
        capacity = replicas * spec.capacity_rps
        served = min(rps, capacity) * self.interval_seconds
        dropped = max(rps - capacity, 0.0) * self.interval_seconds
        idle = replicas * spec.power_idle_w * self.interval_seconds
        startups = max(replicas - current_replicas, 0)
        return Energy(idle + served * spec.joules_per_request
                      + startups * spec.startup_energy_j
                      + dropped * self.drop_penalty_j)


class InterfaceAutoscaler(Autoscaler):
    """Interface-driven: size for the *predicted* load, by energy.

    ``forecast(interval)`` is the workload's arrival interface; for each
    candidate count the scaler computes predicted energy (idle + dynamic
    + startup amortisation) plus a drop penalty, and picks the minimum.
    ``drop_penalty_j`` prices one dropped request (an SLO, expressed in
    Joules so the optimisation is single-objective).
    """

    name = "interface"

    def __init__(self, spec: ReplicaSpec,
                 forecast: Callable[[int], float],
                 interval_seconds: float,
                 drop_penalty_j: float = 50.0,
                 headroom: float = 1.1,
                 min_replicas: int = 1, max_replicas: int = 64,
                 session: "EvalSession | None" = None) -> None:
        if headroom < 1.0:
            raise SchedulerError("headroom must be >= 1")
        self.spec = spec
        self.forecast = forecast
        self.interval_seconds = interval_seconds
        self.drop_penalty_j = drop_penalty_j
        self.headroom = headroom
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.session = session
        self.interface = ReplicaConfigInterface(spec, interval_seconds,
                                                drop_penalty_j)
        self.health = ComponentHealth()

    def predicted_cost(self, replicas: int, rps: float,
                       current_replicas: int) -> float:
        """The energy interface of the *configuration*, in Joules.

        With a session attached, the evaluation runs through its hooks —
        on a periodic forecast the candidate sweep repeats exactly, so a
        memo hook turns the daily scan into lookups.  A faulting session
        evaluation degrades to the closed-form ``E_interval`` (identical
        model, no substrate), so a chaos run still scales sensibly; the
        failure is marked in :attr:`health` per candidate count.
        """
        call = self.interface("E_interval", replicas, rps, current_replicas)
        if self.session is not None:
            backend = self.session.backend
            try:
                joules = backend.mean(call, session=self.session)
                if math.isnan(joules):
                    # A poisoned hardware reading, not an exception.
                    raise ReproError("NaN prediction")
            except ReproError:
                self.health.mark_failure(f"replicas:{replicas}")
                return backend.closed_form(call)
            self.health.mark_success(f"replicas:{replicas}")
            return joules
        return resolve_backend(None).closed_form(call)

    def decide(self, interval_index: int, observed_rps: float,
               current_replicas: int) -> int:
        # Look past the startup lag: replicas ordered now serve when the
        # *future* load arrives — the proactive move a reactive scaler
        # cannot make.
        horizon = interval_index + self.spec.startup_intervals
        predicted_rps = max(self.forecast(interval_index),
                            self.forecast(horizon)) * self.headroom
        best: tuple[float, int] | None = None
        for replicas in range(self.min_replicas, self.max_replicas + 1):
            cost = self.predicted_cost(replicas, predicted_rps,
                                       current_replicas)
            if best is None or cost < best[0]:
                best = (cost, replicas)
        return best[1]


def diurnal_profile(base_rps: float = 120.0, peak_rps: float = 900.0,
                    intervals_per_day: int = 96) -> Callable[[int], float]:
    """A day-shaped arrival rate (the service's workload interface)."""
    if base_rps < 0 or peak_rps < base_rps:
        raise SchedulerError("need 0 <= base_rps <= peak_rps")

    def profile(interval_index: int) -> float:
        phase = 2 * math.pi * (interval_index % intervals_per_day) \
            / intervals_per_day
        swing = 0.5 * (1 - math.cos(phase))  # 0 at midnight, 1 mid-day
        return base_rps + (peak_rps - base_rps) * swing ** 2

    return profile


class AutoscaleSim:
    """Drives an autoscaler against a ground-truth arrival process."""

    def __init__(self, spec: ReplicaSpec,
                 arrivals: Callable[[int], float],
                 interval_seconds: float = 900.0) -> None:
        if interval_seconds <= 0:
            raise SchedulerError("interval must be positive")
        self.spec = spec
        self.arrivals = arrivals
        self.interval_seconds = interval_seconds

    def run(self, scaler: Autoscaler, n_intervals: int,
            initial_replicas: int = 1) -> ScalingResult:
        """Simulate ``n_intervals``; returns totals."""
        if n_intervals <= 0:
            raise SchedulerError("n_intervals must be positive")
        spec = self.spec
        result = ScalingResult(scaler=scaler.name, intervals=n_intervals,
                               interval_seconds=self.interval_seconds)
        replicas = initial_replicas
        warming: list[int] = []   # replicas still starting up
        observed_rps = self.arrivals(0)
        for interval in range(n_intervals):
            decision = scaler.decide(interval, observed_rps, replicas)
            if decision > replicas:
                added = decision - replicas
                result.energy_joules += added * spec.startup_energy_j
                result.scale_ups += 1
                warming.extend([spec.startup_intervals] * added)
            replicas = decision
            warming = [left - 1 for left in warming if left > 0]
            ready = replicas - len(warming)

            true_rps = self.arrivals(interval)
            capacity = max(ready, 0) * spec.capacity_rps
            served = min(true_rps, capacity) * self.interval_seconds
            dropped = max(true_rps - capacity, 0.0) * self.interval_seconds
            result.energy_joules += (
                replicas * spec.power_idle_w * self.interval_seconds
                + served * spec.joules_per_request)
            result.served_requests += served
            result.dropped_requests += dropped
            result.replica_intervals += replicas
            observed_rps = true_rps
        return result
