"""An LRU cache manager that exports hit-rate ECV bindings.

Fig. 2's systemd/Redis slot: the cache manager administers the cache
resource and — because it observes every lookup — *knows* the hit-rate
distribution that the cache's energy interface declares as the
``local_cache_hit`` ECV.  Its exported interface binds that ECV, which is
precisely how "resource managers are the main agent of composition":
state only the manager can see becomes a bound distribution in the
interface the layer above receives.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Mapping

from repro.core.ecv import BernoulliECV
from repro.core.errors import SchedulerError
from repro.core.stack import ResourceManager

__all__ = ["LRUCacheManager"]


class LRUCacheManager(ResourceManager):
    """An LRU cache of fixed capacity with hit-rate accounting.

    ``ecv_name`` is the ECV this manager knows how to bind (defaults to
    the paper's ``local_cache_hit``).  Until enough lookups have been
    observed (``min_observations``), the manager exports the declared
    default instead of a noisy estimate.
    """

    def __init__(self, name: str, capacity: int,
                 ecv_name: str = "local_cache_hit",
                 min_observations: int = 30,
                 p_quantum: float | None = None) -> None:
        super().__init__(name)
        if capacity <= 0:
            raise SchedulerError(f"cache capacity must be positive, got "
                                 f"{capacity}")
        if p_quantum is not None and not 0.0 < p_quantum <= 1.0:
            raise SchedulerError(f"p_quantum must be in (0, 1], got "
                                 f"{p_quantum}")
        self.capacity = capacity
        self.ecv_name = ecv_name
        self.min_observations = min_observations
        self.p_quantum = p_quantum
        self._entries: OrderedDict[Hashable, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- the cache itself ---------------------------------------------------
    def lookup(self, key: Hashable) -> bool:
        """Access ``key``; returns hit/miss and updates recency + stats."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[key] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return False

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- manager knowledge ------------------------------------------------------
    @property
    def observations(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Observed hit rate (0 when nothing observed yet)."""
        if self.observations == 0:
            return 0.0
        return self.hits / self.observations

    def known_bindings(self) -> Mapping[str, Any]:
        """Bind the hit-rate ECV once the estimate is trustworthy.

        With ``p_quantum`` set, the exported probability is rounded to
        that grid, so environment fingerprints (and therefore
        session-level memoization) stay stable while the observed rate
        drifts within one quantum.
        """
        if self.observations < self.min_observations:
            return {}
        p = self.hit_rate
        if self.p_quantum is not None:
            p = min(1.0, max(0.0, round(
                round(p / self.p_quantum) * self.p_quantum, 12)))
        return {self.ecv_name: BernoulliECV(
            self.ecv_name, p=p,
            description=f"observed over {self.observations} lookups by "
                        f"{self.name}")}

    def reset_statistics(self) -> None:
        """Forget observed hits/misses (cache contents are kept)."""
        self.hits = 0
        self.misses = 0
