"""The unified Calibrator API: one entry point for every calibration.

Historically each call site wired the microbenchmark recipe by hand —
``calibrate_gpu(gpu, NVMLSim(gpu, seed=...))`` imported inline wherever
a calibrated model was needed.  This module replaces that ad-hoc shape
with the same three-piece seam :mod:`repro.core.predict` uses for
prediction backends:

* a :class:`Calibrator` protocol (strategy for producing a
  :class:`~repro.measurement.calibration.CalibratedModel` from a device),
* a ``CALIBRATORS`` registry with :func:`register_calibrator` /
  :func:`resolve_calibrator` so policies and CLIs select by name, and
* a canonical keyword-only :func:`calibrate` entry point returning a
  versioned :class:`CalibrationEpoch`.

Epochs are the freshness currency: their quantised fingerprint feeds the
PR-7 ``CompileCache`` invalidation seam (sub-quantum recalibration keeps
compiled kernels warm; real drift mints a new epoch and drops them), and
the streaming recalibrator (:mod:`repro.calibration.recalibrate`) bumps
the epoch counter whenever its running fit crosses a quantum boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.errors import MeasurementError
from repro.measurement.calibration import (METRICS, CalibratedModel,
                                           fit_unit_energies,
                                           measure_launch_energy,
                                           measure_static_power)

__all__ = [
    "Calibrator",
    "MicrobenchCalibrator",
    "OracleCalibrator",
    "CALIBRATORS",
    "register_calibrator",
    "resolve_calibrator",
    "CalibrationEpoch",
    "calibrate",
    "DEFAULT_UNIT_QUANTUM",
]

#: Relative quantisation step for epoch fingerprints, in log space:
#: unit energies within ~1.6 % of each other share a fingerprint, so
#: sub-quantum recalibration jitter never invalidates compiled kernels.
#: Matches the spirit of ``DEFAULT_P_QUANTUM`` on the session seam.
DEFAULT_UNIT_QUANTUM = 1.0 / 64.0


class Calibrator:
    """Strategy protocol producing a calibrated model from one device.

    Subclasses implement :meth:`calibrate_device`; ``name`` is the
    registry key.  Knobs a strategy does not understand are rejected, so
    typos fail loudly rather than silently skewing a calibration.
    """

    name = "abstract"

    def calibrate_device(self, gpu, nvml, **knobs) -> CalibratedModel:
        """Produce a :class:`CalibratedModel` for ``gpu``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MicrobenchCalibrator(Calibrator):
    """The full §5 microbenchmark recipe, behind the protocol.

    Idle window for static power, empty-kernel sweep for launch
    overhead, then the weighted non-negative least-squares suite fit —
    exactly the historical ``calibrate_gpu`` body.  Runs on the machine
    clock and reads the device through its NVML channel, so calibration
    error is honest (sensor gain, noise, hidden row-activation costs).
    """

    name = "microbench"

    def calibrate_device(self, gpu, nvml, *, suite=None, repeats: int = 20,
                         min_measure_seconds: float = 0.25,
                         idle_seconds: float = 2.0) -> CalibratedModel:
        from repro.measurement.microbench import run_suite

        if nvml is None:
            raise MeasurementError(
                "microbench calibration needs an NVML channel")
        static_power = measure_static_power(gpu, nvml, seconds=idle_seconds)
        launch_energy = measure_launch_energy(gpu, nvml, static_power)
        samples = run_suite(gpu, nvml, suite=suite, repeats=repeats,
                            min_measure_seconds=min_measure_seconds)
        return fit_unit_energies(
            samples, gpu_name=gpu.spec.name,
            fixed={"busy_seconds": static_power,
                   "kernel_launches": launch_energy})


class OracleCalibrator(Calibrator):
    """Ground-truth unit energies straight from the simulator spec.

    The ablation calibrator (benchmark T1's ``oracle_model``): perfect
    per-event energies with zero residual, isolating sensor and
    unmodelled-physics error from calibration error.  Needs no NVML
    channel and consumes no machine time.
    """

    name = "oracle"

    def calibrate_device(self, gpu, nvml=None, **knobs) -> CalibratedModel:
        spec = gpu.spec
        return CalibratedModel(spec.name, {
            "instructions": spec.e_instruction,
            "l1_wavefronts": spec.e_l1_wavefront,
            "l2_sectors": spec.e_l2_sector,
            "vram_sectors": spec.e_vram_sector,
            "kernel_launches": spec.e_kernel_launch,
            "busy_seconds": spec.p_static_w,
        }, residual_rms=0.0, n_samples=0)


_MICROBENCH = MicrobenchCalibrator()
_ORACLE = OracleCalibrator()

#: Named calibrator registry (CLI flags, scenario configs).
CALIBRATORS: dict[str, Calibrator] = {
    "microbench": _MICROBENCH,
    "oracle": _ORACLE,
}


def register_calibrator(calibrator: Calibrator) -> Calibrator:
    """Register a calibrator under its ``name`` (later wins)."""
    CALIBRATORS[calibrator.name] = calibrator
    return calibrator


def resolve_calibrator(calibrator: "str | Calibrator | None") -> Calibrator:
    """Resolve a calibrator name (or instance) to a strategy.

    ``None`` means the default :class:`MicrobenchCalibrator` — the
    paper's recipe.
    """
    if calibrator is None:
        return _MICROBENCH
    if isinstance(calibrator, Calibrator):
        return calibrator
    try:
        return CALIBRATORS[calibrator]
    except (KeyError, TypeError):
        raise MeasurementError(
            f"unknown calibrator {calibrator!r}; expected one of "
            f"{sorted(CALIBRATORS)} or a Calibrator instance") from None


@dataclass(frozen=True)
class CalibrationEpoch:
    """A versioned calibration: the model plus its provenance.

    ``epoch`` increments each time the streaming recalibrator's running
    fit crosses a fingerprint quantum; consumers compare
    :meth:`fingerprint` (or just ``epoch``) to decide whether compiled
    kernels, admission bounds or cached predictions are still grounded
    in current hardware behaviour.
    """

    epoch: int
    model: CalibratedModel
    source: str                 # component name the model grounds
    calibrator: str             # strategy that produced it
    calibrated_at: float        # machine time of calibration

    def predict_joules(self, counters: dict[str, float]) -> float:
        """Convenience passthrough to the model."""
        return self.model.predict_joules(counters)

    def fingerprint(self, quantum: float = DEFAULT_UNIT_QUANTUM
                    ) -> tuple[int, ...]:
        """Log-space quantised unit energies (plus identity).

        Relative quantisation: two models agree iff every unit energy
        matches within ~``quantum`` in log space, so recalibration
        jitter below the quantum keeps downstream caches warm while
        genuine drift changes the print.
        """
        prints = []
        for metric in METRICS:
            value = self.model.unit_energies[metric]
            prints.append(0 if value <= 0.0
                          else int(round(math.log(value) / quantum)))
        return (self.model.gpu_name, self.source, *prints)

    def advanced(self, model: CalibratedModel, at: float
                 ) -> "CalibrationEpoch":
        """The next epoch carrying a refreshed model."""
        return replace(self, epoch=self.epoch + 1, model=model,
                       calibrated_at=at)

    def describe(self) -> str:
        head = (f"calibration epoch {self.epoch} for {self.source} "
                f"({self.calibrator}, t={self.calibrated_at:.3f} s)")
        return head + "\n" + self.model.describe()


def calibrate(machine, *, source: str = "gpu0",
              calibrator: "str | Calibrator | None" = None,
              seed: int = 0, nvml=None, epoch: int = 0,
              **knobs) -> CalibrationEpoch:
    """The canonical calibration entry point.

    ``machine`` is a :class:`~repro.hardware.machine.Machine` (the
    device is looked up by ``source``) or a bare GPU component.  The
    NVML channel defaults to a fresh :class:`NVMLSim` on ``seed`` under
    the SeedSequence spawn discipline; pass ``nvml`` to share one
    channel between calibration and later measurement (so its noise
    stream is continuous across both).
    """
    strategy = resolve_calibrator(calibrator)
    gpu = machine.component(source) if hasattr(machine, "component") \
        else machine
    if nvml is None and strategy.name != "oracle":
        from repro.measurement.nvml import NVMLSim
        nvml = NVMLSim(gpu, seed=seed)
    model = strategy.calibrate_device(gpu, nvml, **knobs)
    return CalibrationEpoch(epoch=int(epoch), model=model,
                            source=getattr(gpu, "name", source),
                            calibrator=strategy.name,
                            calibrated_at=float(gpu.now))
