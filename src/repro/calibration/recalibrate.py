"""Streaming recalibration: a recursive fit over prediction residuals.

The microbenchmark calibration is a batch fit taken once; under drift
its unit energies go stale.  :class:`StreamingRecalibrator` keeps them
fresh from the observations production serving already produces — each
served request yields a ``(predicted counters, NVML-measured Joules)``
pair, exactly the rows of the original calibration design matrix.

The estimator is a Kalman filter for a random-walk coefficient model,
run on *scale-free* features: with ``theta0`` the batch calibration and
``z_i = x_i * theta0_i`` each metric's Joule share, one observation is

    measured / sum(z)  =  u . w + noise,      u = z / sum(z)

so the state ``w`` starts at exactly ``1`` per metric and tracks each
unit energy's drift *ratio* (``w_i = 1.04`` means "instructions cost
4 % more than at calibration time").  ``process_noise`` is the expected
per-observation drift of those ratios and ``measurement_noise`` the
sensor's relative error — both dimensionless, so the filter needs no
per-device tuning even though raw counters span ten orders of
magnitude.  Coefficients are clipped non-negative like the batch fit.
Unlike exponential forgetting (whose stationary correction fraction is
only ``1 - lambda`` per step), the random-walk Kalman gain stays large
enough to track aging ramps without lag.

Staleness is a separate, deliberately simple signal: an EWMA of the
*current model's* relative residuals.  :meth:`check` raises the typed
:class:`~repro.core.errors.CalibrationStale` through the PR-5 ladder
when the EWMA exceeds tolerance — for a live recalibrator that means
drift is outrunning the fit; for a frozen one (``freeze=True``) it is
the paper's calibration-rot alarm.
"""

from __future__ import annotations

import numpy as np

from repro.calibration.api import DEFAULT_UNIT_QUANTUM, CalibrationEpoch
from repro.core.errors import CalibrationStale, MeasurementError
from repro.measurement.calibration import METRICS, CalibratedModel

__all__ = ["StreamingRecalibrator"]


class StreamingRecalibrator:
    """Tracks unit energies online; mints a new epoch when they move.

    ``process_noise`` is the assumed per-observation standard deviation
    of each drift ratio's random walk; ``measurement_noise`` the
    relative standard deviation of one measured reading; ``ewma_alpha``
    the weight of the newest residual in the staleness EWMA;
    ``tolerance`` the EWMA level at which the calibration counts as
    stale; ``freeze`` disables the fit (observations still feed the
    staleness EWMA — the frozen-calibration control leg of benchmark
    S6).
    """

    def __init__(self, epoch: CalibrationEpoch, *,
                 process_noise: float = 0.01,
                 measurement_noise: float = 0.005,
                 ewma_alpha: float = 0.25,
                 tolerance: float = 0.05,
                 min_observations: int = 8,
                 quantum: float = DEFAULT_UNIT_QUANTUM,
                 freeze: bool = False) -> None:
        if process_noise <= 0 or measurement_noise <= 0:
            raise MeasurementError(
                "process and measurement noise must be > 0, got "
                f"{process_noise} / {measurement_noise}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise MeasurementError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if tolerance <= 0:
            raise MeasurementError(f"tolerance must be > 0, got {tolerance}")
        self._epoch = epoch
        self.process_noise = float(process_noise)
        self.measurement_noise = float(measurement_noise)
        self.ewma_alpha = float(ewma_alpha)
        self.tolerance = float(tolerance)
        self.min_observations = int(min_observations)
        self.quantum = float(quantum)
        self.freeze = bool(freeze)
        self._model = epoch.model
        self._theta0 = np.array(
            [epoch.model.unit_energies[m] for m in METRICS])
        self._w = np.ones(len(METRICS))
        # Prior ratio uncertainty: generous relative to one quantum, so
        # the first observations move the ratios freely.
        self._P = np.eye(len(METRICS)) * 0.04
        self._ewma: float | None = None
        self.observations = 0
        self.epochs_minted = 0

    # -- state -------------------------------------------------------------
    @property
    def epoch(self) -> CalibrationEpoch:
        """The current (possibly recalibrated) epoch."""
        return self._epoch

    @property
    def model(self) -> CalibratedModel:
        """The current model — frozen input or running Kalman estimate."""
        return self._model

    @property
    def residual(self) -> float:
        """The staleness EWMA of relative residuals (0 before data)."""
        return 0.0 if self._ewma is None else self._ewma

    @property
    def stale(self) -> bool:
        """True once enough observations put the EWMA over tolerance."""
        return (self.observations >= self.min_observations
                and self.residual > self.tolerance)

    def check(self) -> None:
        """Raise :class:`CalibrationStale` if the model has gone stale."""
        if self.stale:
            raise CalibrationStale(
                f"calibration for {self._epoch.source} is stale: EWMA "
                f"residual {self.residual:.3f} > tolerance "
                f"{self.tolerance:.3f} (epoch {self._epoch.epoch})",
                residual=self.residual, tolerance=self.tolerance,
                epoch=self._epoch.epoch)

    # -- the update --------------------------------------------------------
    def observe(self, counters: dict[str, float], measured_joules: float,
                at: float | None = None) -> CalibrationEpoch | None:
        """Fold in one ``(counters, measured Joules)`` observation.

        Returns the freshly-minted :class:`CalibrationEpoch` when the
        updated fit crosses a fingerprint quantum (callers propagate it
        to their caches), else ``None``.
        """
        if measured_joules <= 0:
            raise MeasurementError(
                f"measured energy must be > 0, got {measured_joules}")
        x = np.array([counters.get(m, 0.0) for m in METRICS])
        z = x * self._theta0
        base = float(z.sum())
        if base <= 0:
            raise MeasurementError(
                "observation has no energy-bearing counters")
        u = z / base
        predicted = base * float(u @ self._w)
        self.observations += 1
        rel = abs(predicted - measured_joules) / measured_joules
        self._ewma = (rel if self._ewma is None else
                      self.ewma_alpha * rel
                      + (1.0 - self.ewma_alpha) * self._ewma)
        if self.freeze:
            return None
        # Kalman update for the random-walk ratio model (predict step:
        # w unchanged, P grows by the process noise).
        self._P += np.eye(len(METRICS)) * self.process_noise ** 2
        Pu = self._P @ u
        denom = self.measurement_noise ** 2 + float(u @ Pu)
        gain = Pu / denom
        innovation = measured_joules / base - float(u @ self._w)
        self._w = np.clip(self._w + gain * innovation, 0.0, None)
        self._P = self._P - np.outer(gain, Pu)
        candidate = CalibratedModel(
            gpu_name=self.model.gpu_name,
            unit_energies={m: float(self._theta0[i] * self._w[i])
                           for i, m in enumerate(METRICS)},
            residual_rms=self.residual,
            n_samples=self.observations)
        refreshed = self._epoch.advanced(
            candidate, at=float(at) if at is not None
            else self._epoch.calibrated_at)
        self._model = candidate
        if refreshed.fingerprint(self.quantum) \
                == self._epoch.fingerprint(self.quantum):
            # Sub-quantum adjustment: the running model stays fresh but
            # the epoch does not churn (downstream caches stay warm).
            return None
        self._epoch = refreshed
        self.epochs_minted += 1
        return refreshed

    def predict_joules(self, counters: dict[str, float]) -> float:
        """Predict with the current (tracking) model."""
        return self.model.predict_joules(counters)

    def __repr__(self) -> str:
        return (f"StreamingRecalibrator(epoch={self._epoch.epoch}, "
                f"n={self.observations}, residual={self.residual:.4f}, "
                f"stale={self.stale}, freeze={self.freeze})")
