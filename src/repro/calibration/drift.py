"""Seeded slow-drift processes for the hardware simulators.

Production silicon does not hold still: thermal state, aging and DVFS
residency all move the effective unit energies and static power away
from whatever a one-shot calibration measured.  A :class:`DriftProcess`
models that movement as a deterministic aging ramp times an
Ornstein-Uhlenbeck wander evaluated on a fixed time grid::

    factor(t) = (1 + rate_per_s * (t - t0)) * exp(x_k),   k = floor((t - t0) / dt)
    x_{k+1}   = x_k * exp(-dt/tau) + sigma * sqrt(1 - exp(-2*dt/tau)) * z_k

where ``z_k`` is drawn from a ``numpy.random.SeedSequence`` spawned with
key ``(_DRIFT_TAG, crc32(key), k)`` — the exact replay discipline of the
Monte Carlo :class:`~repro.core.mcengine.ColumnStore` and the
:class:`~repro.faults.FaultPlan`, under a tag of its own.  Because
``x_k`` depends only on ``(entropy, key, k)``, the factor at any time is
a pure function of the grid index: two runs at the same seed drift
identically, and querying the process at different time partitions
cannot change its path.

A :class:`DriftPlan` bundles per-component :class:`ComponentDrift`
triples (dynamic-energy factor, static-power factor, ambient wander) and
installs them on a machine's components; the hardware modules
(:mod:`repro.hardware.gpu`, :mod:`repro.hardware.cpu`) consult their
optional ``drift`` attribute at energy-computation time, so the drift
shows up in the ledger, in NVML measurements, and therefore in the
prediction residuals the streaming recalibrator watches.
"""

from __future__ import annotations

import math
import zlib

import numpy as np

from repro.core.errors import HardwareError
from repro.core.mcengine import DEFAULT_ENTROPY

__all__ = ["DriftProcess", "ComponentDrift", "DriftPlan",
           "DriftingCostModel", "DRIFT_PRESETS"]

#: Spawn-key tag for drift draws (Monte Carlo columns use 0xC0/0x0D,
#: faults 0xFA, the fleet balancer 0xB7).
_DRIFT_TAG = 0xD1


class DriftProcess:
    """One slowly-drifting multiplier, replayable under the seed discipline.

    ``rate_per_s`` is the deterministic aging component (fractional
    change per simulated second); ``sigma`` the stationary standard
    deviation of the OU wander in log space; ``tau_s`` its mean-reversion
    timescale; ``dt_s`` the evaluation grid.  ``factor(t)`` is 1.0 at
    ``t0`` (no wander yet, no ramp) and stays strictly positive.
    """

    def __init__(self, key: str, *, entropy: int | None = None,
                 rate_per_s: float = 0.0, sigma: float = 0.0,
                 tau_s: float = 30.0, dt_s: float = 0.5,
                 t0: float = 0.0) -> None:
        if tau_s <= 0 or dt_s <= 0:
            raise HardwareError(
                f"drift timescales must be positive (tau={tau_s}, dt={dt_s})")
        if sigma < 0:
            raise HardwareError(f"drift sigma must be >= 0, got {sigma}")
        self.key = str(key)
        self.entropy = int(DEFAULT_ENTROPY if entropy is None else entropy)
        self.rate_per_s = float(rate_per_s)
        self.sigma = float(sigma)
        self.tau_s = float(tau_s)
        self.dt_s = float(dt_s)
        self.t0 = float(t0)
        self._key_crc = zlib.crc32(self.key.encode("utf-8"))
        # Exact OU discretisation constants on the grid.
        self._decay = math.exp(-self.dt_s / self.tau_s)
        self._shock = self.sigma * math.sqrt(1.0 - self._decay * self._decay)
        #: Cached OU prefix — x[k] is a pure function of (entropy, key, k),
        #: so extending the cache never changes earlier values.
        self._x: list[float] = [0.0]

    def _draw(self, index: int) -> float:
        seq = np.random.SeedSequence(
            self.entropy, spawn_key=(_DRIFT_TAG, self._key_crc, int(index)))
        return float(np.random.default_rng(seq).standard_normal())

    def _state(self, index: int) -> float:
        while len(self._x) <= index:
            k = len(self._x)
            self._x.append(self._x[-1] * self._decay
                           + self._shock * self._draw(k - 1))
        return self._x[index]

    def factor(self, t: float) -> float:
        """The multiplier at simulated time ``t`` (1.0 before ``t0``)."""
        elapsed = t - self.t0
        if elapsed <= 0:
            return 1.0
        index = int(elapsed / self.dt_s)
        ramp = max(1.0 + self.rate_per_s * elapsed, 0.0)
        return ramp * math.exp(self._state(index))

    def delta(self, t: float) -> float:
        """The additive excursion ``factor(t) - 1`` (ambient wander)."""
        return self.factor(t) - 1.0

    def rebased(self, t0: float) -> "DriftProcess":
        """The same process with its origin moved to ``t0``."""
        return DriftProcess(self.key, entropy=self.entropy,
                            rate_per_s=self.rate_per_s, sigma=self.sigma,
                            tau_s=self.tau_s, dt_s=self.dt_s, t0=t0)

    def __repr__(self) -> str:
        return (f"DriftProcess({self.key!r}, rate={self.rate_per_s:.3g}/s, "
                f"sigma={self.sigma:.3g}, tau={self.tau_s:.3g} s)")


class ComponentDrift:
    """The drift triple one hardware component consults.

    ``energy`` scales per-event dynamic energy, ``static`` scales static
    power, ``ambient`` wanders the thermal node's ambient temperature
    (additive, ``ambient_scale_c`` degrees per unit excursion).  Hardware
    modules duck-type against this: a component with ``drift = None``
    behaves exactly as before.
    """

    def __init__(self, energy: DriftProcess | None = None,
                 static: DriftProcess | None = None,
                 ambient: DriftProcess | None = None,
                 ambient_scale_c: float = 40.0) -> None:
        self.energy = energy
        self.static = static
        self.ambient = ambient
        self.ambient_scale_c = float(ambient_scale_c)
        self._base_ambient: float | None = None

    def energy_factor(self, t: float) -> float:
        return self.energy.factor(t) if self.energy is not None else 1.0

    def static_factor(self, t: float) -> float:
        return self.static.factor(t) if self.static is not None else 1.0

    def advance(self, thermal, t: float) -> None:
        """Apply the ambient wander to a thermal node at time ``t``."""
        if self.ambient is None:
            return
        if self._base_ambient is None:
            self._base_ambient = thermal.t_ambient
        thermal.t_ambient = (self._base_ambient
                             + self.ambient_scale_c * self.ambient.delta(t))

    def rebased(self, t0: float) -> "ComponentDrift":
        return ComponentDrift(
            energy=self.energy.rebased(t0) if self.energy else None,
            static=self.static.rebased(t0) if self.static else None,
            ambient=self.ambient.rebased(t0) if self.ambient else None,
            ambient_scale_c=self.ambient_scale_c)


#: Named drift presets: (energy rate/s, energy sigma, static rate/s,
#: static sigma, ambient sigma).  "gentle" drifts a few percent over a
#: minute of simulated time — enough to break a frozen calibration's T1
#: envelope while a streaming recalibrator tracks it; "harsh" is the
#: stress shape.
DRIFT_PRESETS: dict[str, dict[str, float]] = {
    "none": dict(energy_rate=0.0, energy_sigma=0.0,
                 static_rate=0.0, static_sigma=0.0, ambient_sigma=0.0),
    "gentle": dict(energy_rate=1.5e-3, energy_sigma=0.01,
                   static_rate=1.0e-3, static_sigma=0.01,
                   ambient_sigma=0.005),
    "harsh": dict(energy_rate=5.0e-3, energy_sigma=0.03,
                  static_rate=4.0e-3, static_sigma=0.03,
                  ambient_sigma=0.02),
}


class DriftPlan:
    """Per-component drift processes, installable on a machine.

    Mirrors :class:`~repro.faults.FaultPlan`: construct once from an
    entropy, install on a machine, replay bitwise.  ``install`` rebases
    every process to the machine's *current* clock, so drift starts at
    install time (typically right after calibration) and the factor is
    exactly 1.0 at that instant.
    """

    def __init__(self, drifts: dict[str, ComponentDrift],
                 entropy: int | None = None, preset: str = "custom") -> None:
        self.drifts = dict(drifts)
        self.entropy = int(DEFAULT_ENTROPY if entropy is None else entropy)
        self.preset = preset

    @classmethod
    def preset_for(cls, components: tuple[str, ...] | list[str],
                   preset: str = "gentle",
                   entropy: int | None = None,
                   tau_s: float = 30.0, dt_s: float = 0.5) -> "DriftPlan":
        """Build a plan applying one named preset to ``components``."""
        try:
            shape = DRIFT_PRESETS[preset]
        except KeyError:
            raise HardwareError(
                f"unknown drift preset {preset!r}; expected one of "
                f"{sorted(DRIFT_PRESETS)}") from None
        entropy = int(DEFAULT_ENTROPY if entropy is None else entropy)
        drifts = {}
        for name in components:
            drifts[name] = ComponentDrift(
                energy=DriftProcess(f"{name}:energy", entropy=entropy,
                                    rate_per_s=shape["energy_rate"],
                                    sigma=shape["energy_sigma"],
                                    tau_s=tau_s, dt_s=dt_s),
                static=DriftProcess(f"{name}:static", entropy=entropy,
                                    rate_per_s=shape["static_rate"],
                                    sigma=shape["static_sigma"],
                                    tau_s=tau_s, dt_s=dt_s),
                ambient=DriftProcess(f"{name}:ambient", entropy=entropy,
                                     sigma=shape["ambient_sigma"],
                                     tau_s=4.0 * tau_s, dt_s=dt_s),
            )
        return cls(drifts, entropy=entropy, preset=preset)

    def install(self, machine) -> None:
        """Attach each component's drift, rebased to the machine clock."""
        now = machine.now
        for name, drift in self.drifts.items():
            component = machine.component(name)
            if not hasattr(component, "drift"):
                raise HardwareError(
                    f"component {name!r} ({type(component).__name__}) "
                    f"does not support drift")
            component.drift = drift.rebased(now)

    def remove(self, machine) -> None:
        """Detach this plan's drifts from the machine's components."""
        for name in self.drifts:
            machine.component(name).drift = None

    def __repr__(self) -> str:
        return (f"DriftPlan(preset={self.preset!r}, "
                f"components={sorted(self.drifts)})")


class DriftingCostModel:
    """A fleet cost model whose *measured* energy drifts over time.

    Wraps any :class:`repro.fleet.costmodel.CostModel`-shaped object:
    predictions stay frozen (the calibrated view) while measurements are
    scaled by a :class:`DriftProcess` evaluated at the request's arrival
    time — the fleet-scale analogue of hardware drifting away from its
    calibration.  Keep the drift's peak excursion times the inner
    model's measurement spread inside the worst-case factor, or hard
    admission can no longer cover settled draws.
    """

    name = "drifting"

    def __init__(self, inner, process: DriftProcess) -> None:
        self.inner = inner
        self.process = process

    def predict(self, request):
        return self.inner.predict(request)

    def measure(self, request) -> float:
        return (self.inner.measure(request)
                * self.process.factor(request.arrival_s))

    def __repr__(self) -> str:
        return f"DriftingCostModel({self.inner!r}, {self.process!r})"
