"""The drift scenario: calibrate once, drift, recalibrate online.

Shared by the ``repro-energy drift`` CLI subcommand and benchmark S6.
One run builds a GPU workstation, takes a batch calibration through the
canonical :func:`~repro.calibration.calibrate` entry point, installs a
seeded :class:`~repro.calibration.DriftPlan`, then serves windows of
GPT-2 generations.  Every generation produces the Table-1 triple —
predicted counters, predicted Joules, NVML-measured Joules — for two
legs simultaneously:

* **frozen** — the batch calibration used as-is (the status quo the
  paper's calibration story implies);
* **recalibrated** — a :class:`StreamingRecalibrator` folding each
  observation into its running fit (skipped when ``recalibrate=False``).

The resulting :class:`DriftReport` carries per-window errors, staleness
flags and minted epochs, serialises to byte-stable JSON, and hashes to a
sha256 digest — replays at a fixed seed are digest-identical because
drift, sensor noise and workload shapes all live under the SeedSequence
spawn discipline.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.calibration.api import calibrate
from repro.calibration.drift import DRIFT_PRESETS, DriftPlan
from repro.calibration.guard import CalibrationGuard
from repro.calibration.recalibrate import StreamingRecalibrator
from repro.core.errors import MeasurementError

__all__ = ["DriftReport", "run_drift_scenario", "format_drift_report"]


@dataclass(frozen=True)
class DriftReport:
    """One drift-scenario run, replayable and hashable."""

    gpu: str
    preset: str
    seed: int
    windows: int
    generations: int
    tolerance: float
    horizon_s: float
    # per-leg accuracy (mean/max |predicted - measured| / measured)
    frozen_avg_error: float
    frozen_max_error: float
    recal_avg_error: float
    recal_max_error: float
    # staleness + epochs
    frozen_stale: bool
    recal_stale: bool
    frozen_residual: float
    recal_residual: float
    epochs_minted: int
    # per-window mean errors, in window order
    frozen_window_errors: tuple[float, ...]
    recal_window_errors: tuple[float, ...]

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def digest(self) -> str:
        """sha256 over the canonical JSON — the replay-identity check."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def format_drift_report(report: DriftReport) -> str:
    """Human-readable rendering for the CLI."""
    lines = [
        f"drift scenario on {report.gpu} (preset={report.preset}, "
        f"seed={report.seed})",
        f"  windows x generations   {report.windows} x "
        f"{report.generations // max(report.windows, 1)} "
        f"({report.horizon_s:.1f} s simulated)",
        f"  tolerance               {report.tolerance:.3f}",
        f"  frozen   avg/max error  {report.frozen_avg_error:.2%} / "
        f"{report.frozen_max_error:.2%}"
        f"{'  [STALE]' if report.frozen_stale else ''}",
        f"  recal    avg/max error  {report.recal_avg_error:.2%} / "
        f"{report.recal_max_error:.2%}"
        f"{'  [STALE]' if report.recal_stale else ''}",
        f"  epochs minted           {report.epochs_minted}",
        f"  digest                  {report.digest()[:16]}…",
    ]
    return "\n".join(lines)


def run_drift_scenario(spec=None, *, windows: int = 8,
                       gens_per_window: int = 2,
                       preset: str = "gentle",
                       seed: int = 7,
                       tolerance: float = 0.05,
                       idle_between_s: float = 10.0,
                       recalibrate: bool = True,
                       calibrator=None) -> DriftReport:
    """Run the drift scenario once; see the module docstring."""
    from repro.hardware.profiles import SIM4090, build_gpu_workstation
    from repro.llm.config import GPT2_SMALL
    from repro.llm.interface import GPT2EnergyInterface
    from repro.llm.runtime import GPT2Runtime
    from repro.measurement.nvml import NVMLSim

    if windows < 1 or gens_per_window < 1:
        raise MeasurementError("need at least one window and one "
                               "generation per window")
    if preset not in DRIFT_PRESETS:
        raise MeasurementError(
            f"unknown drift preset {preset!r}; expected one of "
            f"{sorted(DRIFT_PRESETS)}")
    if spec is None:
        spec = SIM4090
    machine = build_gpu_workstation(spec)
    gpu = machine.component("gpu0")
    nvml = NVMLSim(gpu, seed=seed)
    epoch0 = calibrate(machine, source="gpu0", nvml=nvml,
                       calibrator=calibrator, seed=seed)
    # Drift starts *after* calibration: the fit is honest at install time.
    plan = DriftPlan.preset_for(("gpu0",), preset=preset, entropy=seed)
    plan.install(machine)

    runtime = GPT2Runtime(gpu, GPT2_SMALL)
    interface = GPT2EnergyInterface(GPT2_SMALL, epoch0.model, spec)
    recal = StreamingRecalibrator(epoch0, tolerance=tolerance,
                                  freeze=not recalibrate)
    frozen_guard = CalibrationGuard(tolerance)

    rng = np.random.default_rng(seed)
    frozen_errors: list[float] = []
    recal_errors: list[float] = []
    frozen_window_means: list[float] = []
    recal_window_means: list[float] = []
    gap_s = idle_between_s / gens_per_window
    for _ in range(windows):
        window_frozen: list[float] = []
        window_recal: list[float] = []
        for _ in range(gens_per_window):
            n_tokens = int(rng.integers(50, 201))
            prompt_len = int(rng.integers(8, 65))
            gpu.idle(gap_s)
            stats = runtime.generate(prompt_len, n_tokens)
            measured = nvml.measure_interval(stats.t_start, stats.t_end)
            counters = interface.predicted_counters(prompt_len, n_tokens)
            frozen_pred = epoch0.model.predict_joules(counters)
            recal_pred = recal.predict_joules(counters)
            window_frozen.append(abs(frozen_pred - measured) / measured)
            window_recal.append(abs(recal_pred - measured) / measured)
            frozen_guard.observe(frozen_pred, measured)
            recal.observe(counters, measured, at=gpu.now)
        frozen_errors.extend(window_frozen)
        recal_errors.extend(window_recal)
        frozen_window_means.append(float(np.mean(window_frozen)))
        recal_window_means.append(float(np.mean(window_recal)))

    return DriftReport(
        gpu=spec.name,
        preset=preset,
        seed=int(seed),
        windows=int(windows),
        generations=windows * gens_per_window,
        tolerance=float(tolerance),
        horizon_s=float(gpu.now),
        frozen_avg_error=float(np.mean(frozen_errors)),
        frozen_max_error=float(np.max(frozen_errors)),
        recal_avg_error=float(np.mean(recal_errors)),
        recal_max_error=float(np.max(recal_errors)),
        frozen_stale=frozen_guard.stale,
        recal_stale=recal.stale,
        frozen_residual=float(frozen_guard.residual),
        recal_residual=float(recal.residual),
        epochs_minted=int(recal.epochs_minted),
        frozen_window_errors=tuple(frozen_window_means),
        recal_window_errors=tuple(recal_window_means),
    )
