"""The admission-side staleness guard: cheap, typed, accountable.

Gateways and fleet replicas do not run the full streaming recalibrator
on their hot path — they just need the alarm.  :class:`CalibrationGuard`
is the EWMA half of :class:`~repro.calibration.StreamingRecalibrator`
alone: feed it every request's ``(predicted, measured)`` Joules and ask
:meth:`check` before admitting the next one.  When the EWMA of relative
residuals exceeds tolerance it raises the typed
:class:`~repro.core.errors.CalibrationStale` through the PR-5 ladder;
the caller decides whether to widen its worst-case bound or reject, and
accounts the degradation on its report either way — calibration rot is
an observable, never a silent constant.
"""

from __future__ import annotations

from repro.core.errors import CalibrationStale, MeasurementError

__all__ = ["CalibrationGuard"]


class CalibrationGuard:
    """EWMA residual watchdog over prediction-vs-measurement pairs."""

    def __init__(self, tolerance: float, *, alpha: float = 0.25,
                 min_observations: int = 8,
                 epoch: int | None = None) -> None:
        if tolerance <= 0:
            raise MeasurementError(f"tolerance must be > 0, got {tolerance}")
        if not 0.0 < alpha <= 1.0:
            raise MeasurementError(f"alpha must be in (0, 1], got {alpha}")
        self.tolerance = float(tolerance)
        self.alpha = float(alpha)
        self.min_observations = int(min_observations)
        self.epoch = epoch
        self._ewma: float | None = None
        self.observations = 0
        self.stale_checks = 0

    @property
    def residual(self) -> float:
        """The EWMA of relative residuals (0 before any observation)."""
        return 0.0 if self._ewma is None else self._ewma

    @property
    def stale(self) -> bool:
        """True once enough observations put the EWMA over tolerance."""
        return (self.observations >= self.min_observations
                and self.residual > self.tolerance)

    def observe(self, predicted_joules: float, measured_joules: float
                ) -> None:
        """Fold in one served request's prediction error."""
        if measured_joules <= 0:
            return
        rel = abs(predicted_joules - measured_joules) / measured_joules
        self.observations += 1
        self._ewma = (rel if self._ewma is None else
                      self.alpha * rel + (1.0 - self.alpha) * self._ewma)

    def check(self) -> None:
        """Raise :class:`CalibrationStale` when the model has gone stale."""
        if self.stale:
            self.stale_checks += 1
            raise CalibrationStale(
                f"calibration is stale: EWMA residual {self.residual:.3f} "
                f"> tolerance {self.tolerance:.3f}",
                residual=self.residual, tolerance=self.tolerance,
                epoch=self.epoch)

    def reset(self) -> None:
        """Forget accumulated residuals (after a recalibration)."""
        self._ewma = None
        self.observations = 0

    def __repr__(self) -> str:
        return (f"CalibrationGuard(residual={self.residual:.4f}, "
                f"tolerance={self.tolerance}, n={self.observations}, "
                f"stale={self.stale})")
