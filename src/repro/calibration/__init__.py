"""Online calibration: drift, streaming recalibration, staleness.

The calibration subsystem closes the loop the paper's Table 1 leaves
open: unit energies are calibrated *once*, but production hardware
drifts (thermal state, aging, DVFS residency), so energy clarity
requires calibration freshness to be a first-class observable.

* :mod:`repro.calibration.api` — the unified :class:`Calibrator`
  protocol/registry, the canonical :func:`calibrate` entry point and
  versioned :class:`CalibrationEpoch` fingerprints.
* :mod:`repro.calibration.drift` — seeded, replayable drift processes
  installed on the hardware simulators.
* :mod:`repro.calibration.recalibrate` — the streaming RLS/Kalman-style
  recalibrator that keeps T1-class accuracy under drift.
* :mod:`repro.calibration.guard` — the admission-side EWMA watchdog
  raising the typed :class:`~repro.core.errors.CalibrationStale`.
* :mod:`repro.calibration.scenario` — the drift scenario shared by the
  ``repro-energy drift`` CLI and benchmark S6.
"""

from repro.calibration.api import (CALIBRATORS, DEFAULT_UNIT_QUANTUM,
                                   CalibrationEpoch, Calibrator,
                                   MicrobenchCalibrator, OracleCalibrator,
                                   calibrate, register_calibrator,
                                   resolve_calibrator)
from repro.calibration.drift import (DRIFT_PRESETS, ComponentDrift,
                                     DriftingCostModel, DriftPlan,
                                     DriftProcess)
from repro.calibration.guard import CalibrationGuard
from repro.calibration.recalibrate import StreamingRecalibrator
from repro.calibration.scenario import (DriftReport, format_drift_report,
                                        run_drift_scenario)

__all__ = [
    "Calibrator",
    "MicrobenchCalibrator",
    "OracleCalibrator",
    "CALIBRATORS",
    "register_calibrator",
    "resolve_calibrator",
    "CalibrationEpoch",
    "calibrate",
    "DEFAULT_UNIT_QUANTUM",
    "DriftProcess",
    "ComponentDrift",
    "DriftPlan",
    "DriftingCostModel",
    "DRIFT_PRESETS",
    "CalibrationGuard",
    "StreamingRecalibrator",
    "DriftReport",
    "run_drift_scenario",
    "format_drift_report",
]
