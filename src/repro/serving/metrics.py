"""Per-request energy attribution records and the serving summary report.

Every request the gateway touches leaves a :class:`RequestRecord`:
decision, predicted energy (expected and worst), measured ledger energy
over its execution window, and latency.  The records serve two purposes:

* **validation** — predicted-vs-ledger error per request is exactly the
  divergence signal §4.2 uses to flag energy bugs, now computed online;
* **attribution** — the records carry machine-clock windows, so
  :func:`attribution_report` can hand the ledger to
  :mod:`repro.core.attribution` and split the run's Joules (including
  static overhead) across activity tags with any of its policies.

:class:`ServingReport` is the operator-facing roll-up: admitted/shed
counts, energy against the configured allowance, p50/p99 latency and the
evaluation-cache statistics that make per-request prediction affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.attribution import Attribution, attribute
from repro.core.errors import ServingError
from repro.core.report import format_table
from repro.hardware.ledger import EnergyLedger

__all__ = ["RequestRecord", "ServingMetrics", "ServingReport",
           "attribution_report", "format_report"]


@dataclass
class RequestRecord:
    """The lifecycle of one request through the gateway."""

    request_id: int
    arrival_s: float
    decision: str                 # final action: admit/degrade/reject/shed
    reason: str = ""
    start_s: float | None = None       # engine time the request started
    finish_s: float | None = None      # engine time it finished
    machine_start_s: float | None = None   # machine-clock execution window
    machine_finish_s: float | None = None
    predicted_expected_j: float | None = None
    predicted_worst_j: float | None = None
    predicted_quantile_j: float | None = None
    measured_j: float | None = None
    deferrals: int = 0
    degraded: bool = False
    #: How the resilient evaluation of this request's cost went: None
    #: (no fault layer), "ok", "degraded-cache", "degraded-bound" or
    #: "rejected" (prediction impossible, request shed).
    eval_status: str | None = None
    #: Error codes met while predicting (retries and degradations).
    eval_faults: tuple = ()
    #: The calibration guard was stale when this request was decided
    #: (served with a widened bound, or rejected outright).
    calibration_stale: bool = False

    @property
    def admitted(self) -> bool:
        """True when the request actually ran (possibly degraded)."""
        return self.finish_s is not None

    @property
    def latency_s(self) -> float | None:
        """Arrival-to-completion seconds (None when shed)."""
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    @property
    def prediction_error(self) -> float | None:
        """Relative expected-vs-measured error (None without both)."""
        if (self.measured_j is None or self.predicted_expected_j is None
                or self.measured_j <= 0.0):
            return None
        return (abs(self.predicted_expected_j - self.measured_j)
                / self.measured_j)


@dataclass(frozen=True)
class ServingReport:
    """The roll-up of one serving run."""

    horizon_s: float
    offered: int
    admitted: int
    degraded: int
    rejected: int
    shed_queue_full: int
    deferred_total: int
    ledger_joules: float
    allowance_joules: float
    predicted_joules: float
    mean_prediction_error: float | None
    p50_latency_s: float | None
    p99_latency_s: float | None
    cache_stats: dict[str, float] = field(default_factory=dict)
    #: Name of the Monte Carlo engine that produced the predictions
    #: ("serial", "vector", "parallel"); None for legacy runs.
    mc_engine: str | None = None
    #: Requests served off a degraded prediction (cache/bound tier).
    eval_degraded: int = 0
    #: Requests shed because prediction failed past the whole ladder.
    eval_rejected: int = 0
    #: Fault-injection statistics from the session's fault hook, when a
    #: chaos run installed one (injected counts per site).
    fault_stats: dict[str, float] = field(default_factory=dict)
    #: Requests decided while the calibration guard was stale (served
    #: with widened bounds or rejected — never silently).
    calibration_stale: int = 0
    #: The subset of stale-calibration requests that were rejected.
    calibration_rejected: int = 0

    @property
    def goodput(self) -> float:
        """Fraction of offered requests that received useful service.

        The chaos benchmark's acceptance metric: a request counts as
        goodput when it actually ran — possibly on a degraded variant or
        off a degraded prediction, but *served*.
        """
        if self.offered == 0:
            return 1.0
        return self.admitted / self.offered

    @property
    def budget_utilisation(self) -> float:
        """Measured energy over the configured allowance."""
        if self.allowance_joules <= 0:
            return float("inf") if self.ledger_joules > 0 else 0.0
        return self.ledger_joules / self.allowance_joules

    @property
    def within_budget(self) -> bool:
        """Did the run stay inside its energy envelope (5% tolerance)?"""
        return self.ledger_joules <= 1.05 * self.allowance_joules


class ServingMetrics:
    """Collects request records during a run and rolls them up."""

    def __init__(self) -> None:
        self.records: list[RequestRecord] = []
        self.shed_queue_full = 0
        self.deferred_total = 0
        self.window: tuple[float, float] | None = None  # machine clock

    def add(self, record: RequestRecord) -> RequestRecord:
        self.records.append(record)
        return record

    # -- roll-up ---------------------------------------------------------------
    def summary(self, horizon_s: float, ledger_joules: float,
                allowance_joules: float,
                cache_stats: dict[str, float] | None = None,
                mc_engine: str | None = None,
                fault_stats: dict[str, float] | None = None
                ) -> ServingReport:
        """Build the :class:`ServingReport` for a finished run."""
        admitted = [r for r in self.records if r.admitted]
        latencies = sorted(r.latency_s for r in admitted)
        errors = [r.prediction_error for r in admitted
                  if r.prediction_error is not None]
        predicted = sum(r.predicted_expected_j or 0.0 for r in admitted)
        return ServingReport(
            horizon_s=horizon_s,
            offered=len(self.records),
            admitted=len(admitted),
            degraded=sum(1 for r in admitted if r.degraded),
            rejected=sum(1 for r in self.records
                         if r.decision == "reject" and not r.admitted),
            shed_queue_full=self.shed_queue_full,
            deferred_total=self.deferred_total,
            ledger_joules=ledger_joules,
            allowance_joules=allowance_joules,
            predicted_joules=predicted,
            mean_prediction_error=(float(np.mean(errors)) if errors else None),
            p50_latency_s=(float(np.percentile(latencies, 50))
                           if latencies else None),
            p99_latency_s=(float(np.percentile(latencies, 99))
                           if latencies else None),
            cache_stats=dict(cache_stats or {}),
            mc_engine=mc_engine,
            eval_degraded=sum(1 for r in self.records
                              if r.eval_status in ("degraded-cache",
                                                   "degraded-bound")),
            eval_rejected=sum(1 for r in self.records
                              if r.eval_status == "rejected"),
            fault_stats=dict(fault_stats or {}),
            calibration_stale=sum(1 for r in self.records
                                  if r.calibration_stale),
            calibration_rejected=sum(1 for r in self.records
                                     if r.calibration_stale
                                     and r.decision == "reject"
                                     and not r.admitted),
        )


def attribution_report(ledger: EnergyLedger, metrics: ServingMetrics,
                       policy: str = "proportional") -> Attribution:
    """Attribute the run's ledger window across activity tags.

    Delegates to :func:`repro.core.attribution.attribute` over the
    machine-clock window the gateway recorded, so static overhead is
    apportioned by the chosen policy exactly as offline analyses do.
    """
    if metrics.window is None:
        raise ServingError(
            "no serving window recorded; run the gateway before attributing")
    t0, t1 = metrics.window
    return attribute(ledger, t0, t1, policy=policy)


def _fmt_opt(value: float | None, suffix: str = "",
             scale: float = 1.0) -> str:
    if value is None:
        return "n/a"
    return f"{value * scale:.4g}{suffix}"


def format_report(report: ServingReport, title: str = "serving report"
                  ) -> str:
    """Render a report as the repository's plain-text table format."""
    rows = [
        ["offered requests", str(report.offered)],
        ["admitted", str(report.admitted)],
        ["  of which degraded", str(report.degraded)],
        ["rejected (policy)", str(report.rejected)],
        ["shed (queue full)", str(report.shed_queue_full)],
        ["deferrals", str(report.deferred_total)],
        ["ledger energy", f"{report.ledger_joules:.4g} J"],
        ["energy allowance", f"{report.allowance_joules:.4g} J"],
        ["budget utilisation", f"{report.budget_utilisation:.1%}"],
        ["predicted (admitted)", f"{report.predicted_joules:.4g} J"],
        ["mean prediction error",
         _fmt_opt(report.mean_prediction_error, "%", 100.0)],
        ["p50 latency", _fmt_opt(report.p50_latency_s, " ms", 1e3)],
        ["p99 latency", _fmt_opt(report.p99_latency_s, " ms", 1e3)],
    ]
    if report.cache_stats:
        rows.append(["eval-cache hit rate",
                     f"{report.cache_stats.get('hit_rate', 0.0):.1%}"])
        rows.append(["eval-cache lookups",
                     str(int(report.cache_stats.get('lookups', 0)))])
    if report.mc_engine is not None:
        rows.append(["mc engine", report.mc_engine])
    if report.fault_stats:
        rows.append(["goodput", f"{report.goodput:.1%}"])
        rows.append(["degraded predictions", str(report.eval_degraded)])
        rows.append(["rejected predictions", str(report.eval_rejected)])
        rows.append(["faults injected",
                     str(int(report.fault_stats.get("total_injected", 0)))])
    if report.calibration_stale:
        rows.append(["stale-calibration requests",
                     str(report.calibration_stale)])
        rows.append(["  of which rejected",
                     str(report.calibration_rejected)])
    return format_table(["metric", "value"], rows, title=title)
