"""Replenishing, hierarchical energy budgets for online admission control.

A budget is a token bucket denominated in Joules: it holds up to
``capacity_joules`` of burst headroom and refills continuously at
``refill_watts``.  The serving gateway *asks before it runs*: before a
request is dispatched, the admission policy checks whether the request's
predicted energy (from the app's energy interface, evaluated in
``"expected"`` or ``"worst"`` mode) fits the tokens currently available.
Ground-truth ledger energy — including static power the node burns
whether or not requests arrive — is then settled against the budget with
:meth:`EnergyBudget.force_draw`, so the bucket tracks physical reality
even when predictions err.

Budgets are **hierarchical**, composing along the Fig. 2 stack exactly
like energy interfaces do: a cluster-level budget constrains every node
budget beneath it, and a node budget constrains every app budget.  A draw
against a leaf must fit the whole ancestor chain.
:meth:`BudgetManager.from_stack` attaches one budget per stack layer
(bottom layer = root) so the gateway can enforce the envelope at whatever
granularity the operator configured.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.core.errors import BudgetError
from repro.core.stack import ResourceManager, SystemStack

__all__ = [
    "BudgetSpec",
    "parse_budget_spec",
    "EnergyBudget",
    "BudgetManager",
]

#: ``"500J+40W"``, ``"500J"`` or ``"40W"`` (case-insensitive, spaces ok).
_SPEC_RE = re.compile(
    r"^\s*(?:(?P<cap>[0-9]*\.?[0-9]+)\s*J)?"
    r"\s*\+?\s*(?:(?P<rate>[0-9]*\.?[0-9]+)\s*W)?\s*$",
    re.IGNORECASE)


@dataclass(frozen=True)
class BudgetSpec:
    """A parsed budget: burst capacity in Joules plus refill in Watts."""

    capacity_joules: float
    refill_watts: float

    def __post_init__(self) -> None:
        if self.capacity_joules < 0 or self.refill_watts < 0:
            raise BudgetError(
                f"budget terms must be >= 0, got {self.capacity_joules} J + "
                f"{self.refill_watts} W")
        if self.capacity_joules == 0 and self.refill_watts == 0:
            raise BudgetError("a budget needs a capacity or a refill rate")

    def __str__(self) -> str:
        return f"{self.capacity_joules:g}J+{self.refill_watts:g}W"


def parse_budget_spec(spec: str) -> BudgetSpec:
    """Parse ``"<capacity>J+<rate>W"`` (either term optional) to a spec.

    >>> parse_budget_spec("500J+40W")
    BudgetSpec(capacity_joules=500.0, refill_watts=40.0)
    """
    if not isinstance(spec, str):
        raise BudgetError(f"budget spec must be a string, got {spec!r}")
    match = _SPEC_RE.match(spec)
    if match is None or (match.group("cap") is None
                         and match.group("rate") is None):
        raise BudgetError(
            f"cannot parse budget spec {spec!r}; expected forms like "
            f"'500J+40W', '500J' or '40W'")
    capacity = float(match.group("cap") or 0.0)
    rate = float(match.group("rate") or 0.0)
    return BudgetSpec(capacity, rate)


class EnergyBudget:
    """A replenishing energy token bucket, optionally with a parent.

    Tokens refill continuously at ``refill_watts`` up to
    ``capacity_joules``.  :meth:`force_draw` may push tokens negative —
    physics does not ask permission — which stalls admission until the
    deficit refills.  All read/draw operations take the current time so
    the bucket lazily integrates refill.
    """

    def __init__(self, name: str, capacity_joules: float,
                 refill_watts: float = 0.0,
                 parent: "EnergyBudget | None" = None,
                 start_time: float = 0.0,
                 initial_joules: float | None = None) -> None:
        if capacity_joules < 0 or refill_watts < 0:
            raise BudgetError(
                f"budget {name!r} needs non-negative capacity and refill")
        self.name = name
        self.capacity_joules = float(capacity_joules)
        self.refill_watts = float(refill_watts)
        self.parent = parent
        self._t0 = float(start_time)
        self._tokens = (float(initial_joules) if initial_joules is not None
                        else float(capacity_joules))
        self._initial = self._tokens
        self._last_sync = float(start_time)
        self.drawn_joules = 0.0

    # -- chain ---------------------------------------------------------------
    def chain(self) -> Iterator["EnergyBudget"]:
        """This budget and all its ancestors, leaf first."""
        budget: EnergyBudget | None = self
        seen = set()
        while budget is not None:
            if id(budget) in seen:
                raise BudgetError(
                    f"budget {budget.name!r} is its own ancestor")
            seen.add(id(budget))
            yield budget
            budget = budget.parent

    # -- token accounting ------------------------------------------------------
    def sync(self, now: float) -> None:
        """Integrate refill up to ``now`` (monotone; rewinds are errors)."""
        if now < self._last_sync - 1e-12:
            raise BudgetError(
                f"budget {self.name!r} cannot rewind to t={now} s "
                f"(synced at {self._last_sync} s)")
        dt = max(now - self._last_sync, 0.0)
        self._tokens = min(self._tokens + self.refill_watts * dt,
                           self.capacity_joules)
        self._last_sync = max(now, self._last_sync)

    def available(self, now: float) -> float:
        """Tokens available at ``now``, bounded by the whole chain."""
        lowest = math.inf
        for budget in self.chain():
            budget.sync(now)
            lowest = min(lowest, budget._tokens)
        return lowest

    def fill_fraction(self, now: float) -> float:
        """Chain-minimum tokens/capacity in [0, 1] (refill-only buckets
        report 1 when non-negative)."""
        lowest = 1.0
        for budget in self.chain():
            budget.sync(now)
            if budget.capacity_joules > 0:
                fraction = budget._tokens / budget.capacity_joules
            else:
                fraction = 1.0 if budget._tokens >= 0 else 0.0
            lowest = min(lowest, fraction)
        return max(min(lowest, 1.0), 0.0)

    def can_draw(self, joules: float, now: float) -> bool:
        """Would ``joules`` fit in every budget along the chain?"""
        if joules < 0:
            raise BudgetError(f"cannot draw {joules} J")
        return self.available(now) >= joules

    def try_draw(self, joules: float, now: float) -> bool:
        """Draw ``joules`` from the whole chain if it fits; else no-op."""
        if not self.can_draw(joules, now):
            return False
        for budget in self.chain():
            budget._tokens -= joules
            budget.drawn_joules += joules
        return True

    def force_draw(self, joules: float, now: float) -> None:
        """Draw unconditionally (tokens may go negative).

        Used to settle *measured* ledger energy: consumed Joules are a
        fact, and an over-optimistic prediction becomes a deficit the
        bucket must refill before the next admission.
        """
        if joules < 0:
            raise BudgetError(f"cannot settle {joules} J")
        for budget in self.chain():
            budget.sync(now)
            budget._tokens -= joules
            budget.drawn_joules += joules

    def refund(self, joules: float, now: float) -> None:
        """Return tokens (e.g. a reservation larger than measured cost)."""
        if joules < 0:
            raise BudgetError(f"cannot refund {joules} J")
        for budget in self.chain():
            budget.sync(now)
            budget._tokens = min(budget._tokens + joules,
                                 budget.capacity_joules)
            budget.drawn_joules -= joules

    def time_until_affordable(self, joules: float, now: float) -> float:
        """Seconds until the chain could afford ``joules`` (inf if never).

        Assumes no draws in the meantime; this is the defer-horizon
        estimate admission policies use.
        """
        worst = 0.0
        for budget in self.chain():
            budget.sync(now)
            if budget._tokens >= joules:
                continue
            ceiling = budget.capacity_joules
            if joules > ceiling or budget.refill_watts <= 0:
                return math.inf
            worst = max(worst,
                        (joules - budget._tokens) / budget.refill_watts)
        return worst

    def cumulative_allowance(self, now: float) -> float:
        """Nominal Joules released to the chain since creation.

        ``initial tokens + refill x elapsed``, minimised over the chain —
        the configured energy envelope a compliant serving run must not
        exceed.
        """
        lowest = math.inf
        for budget in self.chain():
            elapsed = max(now - budget._t0, 0.0)
            lowest = min(lowest,
                         budget._initial + budget.refill_watts * elapsed)
        return lowest

    def __repr__(self) -> str:
        parent = f", parent={self.parent.name!r}" if self.parent else ""
        return (f"EnergyBudget({self.name!r}, {self.capacity_joules:g} J @ "
                f"{self.refill_watts:g} W, tokens={self._tokens:.4g}{parent})")


class BudgetManager(ResourceManager):
    """A resource manager that administers the energy-budget hierarchy.

    §3's resource managers compose energy *interfaces* up the stack; the
    budget manager composes energy *allowances* down it: every layer may
    carry a budget, and a request admitted at the top must fit each layer
    it crosses.  The manager registers no functional resources — its
    "resource" is headroom.
    """

    def __init__(self, name: str = "budget-manager") -> None:
        super().__init__(name)
        self._budgets: dict[str, EnergyBudget] = {}
        self._leaf: EnergyBudget | None = None

    def add_budget(self, scope: str, spec: BudgetSpec,
                   start_time: float = 0.0) -> EnergyBudget:
        """Attach a budget for ``scope`` beneath the current leaf."""
        if scope in self._budgets:
            raise BudgetError(f"scope {scope!r} already has a budget")
        budget = EnergyBudget(scope, spec.capacity_joules, spec.refill_watts,
                              parent=self._leaf, start_time=start_time)
        self._budgets[scope] = budget
        self._leaf = budget
        return budget

    def budget_for(self, scope: str) -> EnergyBudget:
        """The budget attached at ``scope``."""
        try:
            return self._budgets[scope]
        except KeyError:
            raise BudgetError(
                f"no budget for scope {scope!r}; known: "
                f"{sorted(self._budgets)}") from None

    @property
    def leaf(self) -> EnergyBudget:
        """The most-constrained (topmost-layer) budget; draws check the
        whole chain."""
        if self._leaf is None:
            raise BudgetError(f"manager {self.name!r} has no budgets")
        return self._leaf

    @classmethod
    def from_stack(cls, stack: SystemStack,
                   specs: Mapping[str, BudgetSpec | str],
                   start_time: float = 0.0) -> "BudgetManager":
        """One budget per named stack layer, chained bottom-up.

        ``specs`` maps layer names to :class:`BudgetSpec` (or spec
        strings); layers are visited in stack order so the bottom layer's
        budget is the root of the hierarchy.  Layers without a spec carry
        no budget.
        """
        manager = cls(name=f"budgets@{'/'.join(l.name for l in stack.layers)}")
        for layer in stack.layers:
            if layer.name not in specs:
                continue
            spec = specs[layer.name]
            if isinstance(spec, str):
                spec = parse_budget_spec(spec)
            manager.add_budget(layer.name, spec, start_time=start_time)
        if manager._leaf is None:
            raise BudgetError(
                f"no spec matched any stack layer; layers: "
                f"{[l.name for l in stack.layers]}, specs: {sorted(specs)}")
        return manager
