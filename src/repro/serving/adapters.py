"""Adapters that plug the repository's apps into the serving gateway.

An adapter pairs an app's *implementation* (which runs on simulated
hardware and writes ground truth into the machine ledger) with its
*energy interface* (which the gateway evaluates before dispatch), and
answers the four questions the gateway asks:

* ``cost_call(request)`` — which interface method and abstract input
  price this request?
* ``execute(request)`` — run it on the hardware (advancing the machine
  clock);
* ``degrade(request)`` — is there a cheaper variant (smaller image,
  shorter generation) the gateway may fall back to?
* ``current_bindings()`` — the manager-observed ECV bindings to evaluate
  under, refreshed periodically and quantised so the evaluation cache
  stays warm between refreshes.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.core.ecv import BernoulliECV, ECV
from repro.core.errors import ServingError
from repro.core.interface import EnergyInterface
from repro.hardware.machine import Machine
from repro.serving.evalcache import DEFAULT_P_QUANTUM, env_fingerprint
from repro.workloads.traces import GenerationRequest, ImageRequest, KVRequest

__all__ = ["ServiceAdapter", "MLServiceAdapter", "KVStoreAdapter",
           "GPT2Adapter", "build_adapter"]


def _quantise_bindings(bindings: Mapping[str, Any],
                       quantum: float) -> dict[str, Any]:
    """Snap Bernoulli probabilities to a grid so fingerprints are stable."""
    quantised: dict[str, Any] = {}
    for name, value in bindings.items():
        if isinstance(value, BernoulliECV):
            p = min(max(round(value.p / quantum) * quantum, 0.0), 1.0)
            quantised[name] = BernoulliECV(value.name, p=p,
                                           description=value.description)
        else:
            quantised[name] = value
    return quantised


class ServiceAdapter:
    """Base adapter: binding refresh/fingerprint plumbing for subclasses."""

    def __init__(self, name: str, machine: Machine,
                 interface: EnergyInterface,
                 refresh_every: int = 200,
                 p_quantum: float = DEFAULT_P_QUANTUM) -> None:
        if refresh_every <= 0:
            raise ServingError(
                f"refresh_every must be positive, got {refresh_every}")
        self.name = name
        self.machine = machine
        self.interface = interface
        self.refresh_every = refresh_every
        self.p_quantum = p_quantum
        self._executed = 0
        self._bindings: dict[str, Any] | None = None
        self._fingerprint: tuple | None = None
        self._refresh_mark = -1

    # -- to be provided by subclasses -------------------------------------------
    def cost_call(self, request: Any) -> tuple[str, tuple]:
        """The interface method and abstract input pricing ``request``."""
        raise NotImplementedError

    def _run(self, request: Any) -> None:
        raise NotImplementedError

    def observed_bindings(self) -> Mapping[str, ECV]:
        """Raw manager-observed ECV bindings (may be empty)."""
        return {}

    def degrade(self, request: Any) -> Any | None:
        """A cheaper variant of ``request``, or None when there is none."""
        return None

    # -- gateway-facing API -----------------------------------------------------
    def execute(self, request: Any) -> None:
        """Run the request on the hardware; the machine clock advances."""
        self._run(request)
        self._executed += 1

    def current_bindings(self) -> dict[str, Any]:
        """Quantised bindings, refreshed every ``refresh_every`` requests."""
        epoch = self._executed // self.refresh_every
        if self._bindings is None or epoch != self._refresh_mark:
            self._bindings = _quantise_bindings(self.observed_bindings(),
                                                self.p_quantum)
            self._fingerprint = env_fingerprint(self._bindings,
                                                self.p_quantum)
            self._refresh_mark = epoch
        return self._bindings

    def binding_fingerprint(self) -> tuple:
        """Fingerprint matching :meth:`current_bindings`."""
        self.current_bindings()
        assert self._fingerprint is not None
        return self._fingerprint

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class MLServiceAdapter(ServiceAdapter):
    """Fig. 1's CNN web service behind the gateway.

    Builds the full Fig. 2 stack (hardware -> OS -> runtime) around
    :class:`~repro.apps.mlservice.MLWebService`; the gateway prices
    requests through the stack's top-level interface under the cache
    managers' observed hit rates.  Degradation serves a downsampled
    variant of the image (see
    :meth:`~repro.apps.mlservice.MLWebService.degraded_variant`).
    """

    def __init__(self, machine: Machine | None = None, seed: int = 7,
                 warmup_requests: int = 400,
                 degrade_factor: int = 4,
                 refresh_every: int = 200,
                 p_quantum: float = DEFAULT_P_QUANTUM) -> None:
        from repro.apps.mlservice import (
            MLWebService,
            build_service_machine,
            build_service_stack,
        )
        from repro.calibration import calibrate
        from repro.workloads.traces import repeated_image_trace

        if machine is None:
            machine = build_service_machine()
        self.service = MLWebService(machine)
        calibrated = calibrate(machine, source="gpu0", seed=seed).model
        self.stack = build_service_stack(self.service, calibrated)
        interface = self.stack.resource("runtime/ml_webservice") \
            .energy_interface
        super().__init__("mlservice", machine, interface,
                         refresh_every=refresh_every, p_quantum=p_quantum)
        self.degrade_factor = degrade_factor
        if warmup_requests > 0:
            rng = np.random.default_rng(seed)
            for request in repeated_image_trace(warmup_requests, rng):
                self.service.handle(request)

    def cost_call(self, request: ImageRequest) -> tuple[str, tuple]:
        return "E_handle", (request.image_pixels, request.zero_pixels)

    def _run(self, request: ImageRequest) -> None:
        self.service.handle(request)

    def observed_bindings(self) -> Mapping[str, ECV]:
        return self.service.observed_bindings()

    def degrade(self, request: ImageRequest) -> ImageRequest | None:
        return self.service.degraded_variant(request, self.degrade_factor)


class KVStoreAdapter(ServiceAdapter):
    """The flash key-value store behind the gateway.

    The interesting ECV is ``gc_triggered``: worst-case admission prices
    every put at a garbage-collection storm, which is exactly what a hard
    energy guarantee must assume.  The storage manager binds the GC
    probability from device headroom, so expected-mode pricing stays
    sharp.
    """

    def __init__(self, machine: Machine | None = None,
                 value_bytes: int = 16 * 1024,
                 refresh_every: int = 50,
                 p_quantum: float = DEFAULT_P_QUANTUM) -> None:
        from repro.apps.kvstore import (
            KVStore,
            KVStoreEnergyInterface,
            StorageManager,
        )
        from repro.hardware.storage import SSD

        if machine is None:
            machine = Machine("kv-node")
            machine.add(SSD("ssd0"))
        ssd = machine.component("ssd0")
        self.store = KVStore(ssd, value_bytes)
        self.manager = StorageManager("storage-mgr", ssd, value_bytes)
        super().__init__("kvstore", machine,
                         KVStoreEnergyInterface(ssd, value_bytes),
                         refresh_every=refresh_every, p_quantum=p_quantum)

    def cost_call(self, request: KVRequest) -> tuple[str, tuple]:
        if request.op == "put":
            return "E_put", ()
        return "E_get", ()

    def _run(self, request: KVRequest) -> None:
        if request.op == "put":
            self.store.put(request.key)
        else:
            self.store.get(request.key)

    def observed_bindings(self) -> Mapping[str, ECV]:
        return self.manager.known_bindings()


class GPT2Adapter(ServiceAdapter):
    """The §5 GPT-2 inference runtime behind the gateway.

    Requests are priced through the calibrated counter-model interface;
    degradation caps the generation length, the standard serving lever
    for LLM cost control.
    """

    def __init__(self, machine: Machine | None = None, seed: int = 7,
                 degraded_output_tokens: int = 32,
                 refresh_every: int = 200,
                 p_quantum: float = DEFAULT_P_QUANTUM) -> None:
        from repro.hardware.profiles import SIM4090, build_gpu_workstation
        from repro.llm.config import GPT2_SMALL
        from repro.llm.interface import GPT2EnergyInterface
        from repro.llm.runtime import GPT2Runtime
        from repro.calibration import calibrate

        if machine is None:
            machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        spec = gpu.spec
        calibrated = calibrate(machine, source="gpu0", seed=seed).model
        self.runtime = GPT2Runtime(gpu, GPT2_SMALL)
        super().__init__("llm", machine,
                         GPT2EnergyInterface(GPT2_SMALL, calibrated, spec),
                         refresh_every=refresh_every, p_quantum=p_quantum)
        self.degraded_output_tokens = degraded_output_tokens

    def cost_call(self, request: GenerationRequest) -> tuple[str, tuple]:
        return "E_generate", (request.prompt_tokens, request.output_tokens)

    def _run(self, request: GenerationRequest) -> None:
        self.runtime.serve(request)

    def degrade(self, request: GenerationRequest) -> GenerationRequest | None:
        if request.output_tokens <= self.degraded_output_tokens:
            return None
        return GenerationRequest(request.prompt_tokens,
                                 self.degraded_output_tokens)


def build_adapter(app: str, seed: int = 7) -> ServiceAdapter:
    """Construct the adapter for a CLI app name."""
    builders = {
        "mlservice": lambda: MLServiceAdapter(seed=seed),
        "kvstore": lambda: KVStoreAdapter(),
        "llm": lambda: GPT2Adapter(seed=seed),
    }
    try:
        builder = builders[app]
    except KeyError:
        raise ServingError(
            f"unknown app {app!r}; expected one of {sorted(builders)}"
        ) from None
    return builder()
