"""Memoization of energy-interface evaluations for the serving hot path.

Evaluating an interface enumerates every ECV trace (or Monte-Carlo
samples a continuous one) — affordable offline, but the gateway does it
*twice per request* ("expected" to estimate, "worst" to guarantee).  The
cache exploits two facts:

* interfaces take an **abstraction** of the input (§3), so distinct
  requests collapse onto few keys — every 224x224 image with the same
  sparsity is one entry;
* evaluation is deterministic given the abstract input and the **ECV
  environment**, so a fingerprint of the bound distributions is a sound
  cache key.  Managers re-bind ECVs as observations accumulate; the
  fingerprint quantises distribution parameters so a hit rate drifting
  from 0.912 to 0.913 does not invalidate the cache, while a real regime
  change (new quantum) does.

Hit/miss statistics are part of the serving report: the paper's "ask
before you run" is only viable online if asking is nearly free.

The memoization store itself now lives in :mod:`repro.core.session` as
:class:`~repro.core.session.MemoHook`, so *any* layer that threads an
:class:`~repro.core.session.EvalSession` gets the same cache — the
gateway is just one client.  :class:`EvalCache` remains as a thin shim
over a hook, keeping the original serving-facing API (and its
statistics surface) intact; :attr:`EvalCache.hook` is what gateways
install into their session's hook chain.
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping

from repro.core.errors import ServingError
from repro.core.interface import EnergyInterface, evaluate
from repro.core.session import (
    DEFAULT_P_QUANTUM,
    MemoHook,
    ecv_fingerprint,
    env_fingerprint,
)

__all__ = ["EvalCache", "ecv_fingerprint", "env_fingerprint",
           "DEFAULT_P_QUANTUM"]


class EvalCache:
    """A bounded LRU cache of interface-evaluation results.

    Keys combine the interface name, method, abstract input, evaluation
    mode and an environment fingerprint.  Values are whatever
    :meth:`~repro.core.interface.EnergyInterface.evaluate` returned
    (:class:`~repro.core.units.Energy` values are immutable, so sharing
    is safe).

    Internally a shim over :class:`~repro.core.session.MemoHook`: install
    :attr:`hook` into an :class:`~repro.core.session.EvalSession` to share
    this cache with every evaluation that session drives.
    """

    def __init__(self, max_entries: int = 4096,
                 p_quantum: float = DEFAULT_P_QUANTUM) -> None:
        if max_entries <= 0:
            raise ServingError(
                f"cache needs a positive capacity, got {max_entries}")
        self._hook = MemoHook(max_entries, p_quantum)

    @property
    def hook(self) -> MemoHook:
        """The underlying session hook backing this cache."""
        return self._hook

    @property
    def max_entries(self) -> int:
        return self._hook.max_entries

    @property
    def p_quantum(self) -> float:
        return self._hook.p_quantum

    # -- the cache ------------------------------------------------------------
    def evaluate(self, interface: EnergyInterface, method: str,
                 args: tuple, mode: str,
                 env: Mapping[str, Any] | None = None,
                 fingerprint: Hashable | None = None,
                 **eval_kwargs: Any) -> Any:
        """Evaluate through the cache.

        ``fingerprint`` (when the caller already computed one for ``env``)
        skips re-fingerprinting; otherwise ``env`` is fingerprinted here.
        """
        if fingerprint is None:
            fingerprint = env_fingerprint(env, self.p_quantum)
        key = (interface.name, method, tuple(args), mode, fingerprint)
        hit, value = self._hook.lookup(key)
        if hit:
            return value
        value = evaluate(interface(method, *args), mode=mode, env=env,
                         **eval_kwargs)
        self._hook.store(key, value)
        return value

    def invalidate(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._hook.clear()

    # -- statistics -------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self._hook.hits

    @property
    def misses(self) -> int:
        return self._hook.misses

    @property
    def evictions(self) -> int:
        return self._hook.evictions

    def __len__(self) -> int:
        return len(self._hook)

    @property
    def lookups(self) -> int:
        """Total evaluate() calls."""
        return self._hook.lookups

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self._hook.hit_rate

    def stats(self) -> dict[str, float]:
        """A summary dict for the serving report."""
        return self._hook.stats()

    def __repr__(self) -> str:
        return (f"EvalCache(entries={len(self._hook)}, "
                f"hit_rate={self.hit_rate:.2%})")
