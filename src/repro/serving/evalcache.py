"""Memoization of energy-interface evaluations for the serving hot path.

Evaluating an interface enumerates every ECV trace (or Monte-Carlo
samples a continuous one) — affordable offline, but the gateway does it
*twice per request* ("expected" to estimate, "worst" to guarantee).  The
cache exploits two facts:

* interfaces take an **abstraction** of the input (§3), so distinct
  requests collapse onto few keys — every 224x224 image with the same
  sparsity is one entry;
* evaluation is deterministic given the abstract input and the **ECV
  environment**, so a fingerprint of the bound distributions is a sound
  cache key.  Managers re-bind ECVs as observations accumulate; the
  fingerprint quantises distribution parameters so a hit rate drifting
  from 0.912 to 0.913 does not invalidate the cache, while a real regime
  change (new quantum) does.

Hit/miss statistics are part of the serving report: the paper's "ask
before you run" is only viable online if asking is nearly free.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Mapping

from repro.core.ecv import (
    ECV,
    BernoulliECV,
    CategoricalECV,
    ContinuousECV,
    FixedECV,
    UniformIntECV,
)
from repro.core.errors import ServingError
from repro.core.interface import EnergyInterface

__all__ = ["EvalCache", "ecv_fingerprint", "env_fingerprint",
           "DEFAULT_P_QUANTUM"]

#: Default quantum for probability/parameter rounding in fingerprints.
DEFAULT_P_QUANTUM = 1.0 / 64.0


def _quantise(value: float, quantum: float) -> float:
    return round(round(float(value) / quantum) * quantum, 12)


def ecv_fingerprint(ecv: ECV, p_quantum: float = DEFAULT_P_QUANTUM
                    ) -> tuple:
    """A stable, hashable summary of an ECV's distribution."""
    if isinstance(ecv, BernoulliECV):
        return ("bern", _quantise(ecv.p, p_quantum))
    if isinstance(ecv, FixedECV):
        return ("fixed", ecv.value)
    if isinstance(ecv, CategoricalECV):
        return ("cat", tuple((value, _quantise(p, p_quantum))
                             for value, p in ecv.support()))
    if isinstance(ecv, UniformIntECV):
        return ("unifint", ecv.low, ecv.high)
    if isinstance(ecv, ContinuousECV):
        return ("cont", ecv.low, ecv.high)
    # Unknown ECV kinds fall back to their repr; correct as long as the
    # repr covers the distribution parameters.
    return ("repr", repr(ecv))


def env_fingerprint(bindings: Mapping[str, Any] | None,
                    p_quantum: float = DEFAULT_P_QUANTUM) -> tuple:
    """Fingerprint an ECV-binding mapping (name -> value or ECV)."""
    if not bindings:
        return ()
    items = []
    for name in sorted(bindings):
        value = bindings[name]
        if isinstance(value, ECV):
            items.append((name,) + ecv_fingerprint(value, p_quantum))
        else:
            items.append((name, "val", value))
    return tuple(items)


class EvalCache:
    """A bounded LRU cache of interface-evaluation results.

    Keys combine the interface name, method, abstract input, evaluation
    mode and an environment fingerprint.  Values are whatever
    :meth:`~repro.core.interface.EnergyInterface.evaluate` returned
    (:class:`~repro.core.units.Energy` values are immutable, so sharing
    is safe).
    """

    def __init__(self, max_entries: int = 4096,
                 p_quantum: float = DEFAULT_P_QUANTUM) -> None:
        if max_entries <= 0:
            raise ServingError(
                f"cache needs a positive capacity, got {max_entries}")
        self.max_entries = max_entries
        self.p_quantum = p_quantum
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- the cache ------------------------------------------------------------
    def evaluate(self, interface: EnergyInterface, method: str,
                 args: tuple, mode: str,
                 env: Mapping[str, Any] | None = None,
                 fingerprint: Hashable | None = None,
                 **eval_kwargs: Any) -> Any:
        """Evaluate through the cache.

        ``fingerprint`` (when the caller already computed one for ``env``)
        skips re-fingerprinting; otherwise ``env`` is fingerprinted here.
        """
        if fingerprint is None:
            fingerprint = env_fingerprint(env, self.p_quantum)
        key = (interface.name, method, tuple(args), mode, fingerprint)
        try:
            value = self._entries[key]
        except TypeError:
            # Unhashable abstract input: evaluate uncached.
            self.misses += 1
            return interface.evaluate(method, *args, mode=mode, env=env,
                                      **eval_kwargs)
        except KeyError:
            self.misses += 1
            value = interface.evaluate(method, *args, mode=mode, env=env,
                                       **eval_kwargs)
            self._entries[key] = value
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            return value
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def invalidate(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    # -- statistics -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        """Total evaluate() calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def stats(self) -> dict[str, float]:
        """A summary dict for the serving report."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (f"EvalCache(entries={len(self._entries)}, "
                f"hit_rate={self.hit_rate:.2%})")
