"""Pluggable admission policies: decide before a single Joule is spent.

This is the paper's "ask before you run" made operational: each policy
sees a request's predicted energy — the app's energy interface evaluated
in ``"expected"`` mode (the likely bill) and ``"worst"`` mode (the
guarantee) — together with the state of the energy-budget chain, and
answers one of four ways:

* **admit** — dispatch the request as-is;
* **degrade** — dispatch a cheaper variant the app offered (smaller
  image, shorter generation);
* **defer** — hold the request until the budget refills;
* **reject** — shed it.

Policies are deliberately small and side-effect free: they never draw
tokens themselves (the gateway settles ground-truth ledger energy), so
they can be swapped, composed and unit-tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ServingError
from repro.serving.budget import EnergyBudget

__all__ = [
    "ADMIT", "REJECT", "DEFER", "DEGRADE",
    "AdmissionContext", "AdmissionDecision",
    "AdmissionPolicy", "AdmitAllPolicy", "HardBudgetPolicy",
    "ProbabilisticPolicy", "QuantileBudgetPolicy", "SLOAwarePolicy",
]

ADMIT = "admit"
REJECT = "reject"
DEFER = "defer"
DEGRADE = "degrade"


@dataclass(frozen=True)
class AdmissionContext:
    """Everything a policy may consult for one decision."""

    now: float
    budget: EnergyBudget
    expected_joules: float
    worst_joules: float
    #: q-quantile of the predicted cost distribution, when the gateway is
    #: configured with ``admission_quantile`` (a tail bound between the
    #: mean and the worst case, estimated by the batched MC engine).
    quantile_joules: float | None = None
    queue_depth: int = 0
    wait_estimate_s: float = 0.0
    deferrals: int = 0
    degraded_expected_joules: float | None = None
    degraded_worst_joules: float | None = None

    def __post_init__(self) -> None:
        # A poisoned prediction must never reach a policy: the gateway's
        # resilient evaluator filters NaN (garbage hardware readings)
        # into typed rejections before building a context.
        for name in ("expected_joules", "worst_joules", "quantile_joules"):
            value = getattr(self, name)
            if value is not None and value != value:
                raise ServingError(
                    f"admission context has NaN {name} — a poisoned "
                    f"prediction leaked past the degradation ladder")

    @property
    def has_degraded(self) -> bool:
        """True when the app offered a cheaper variant."""
        return self.degraded_worst_joules is not None


@dataclass(frozen=True)
class AdmissionDecision:
    """One verdict plus the reason the report will show."""

    action: str
    reason: str = ""

    def __post_init__(self) -> None:
        if self.action not in (ADMIT, REJECT, DEFER, DEGRADE):
            raise ServingError(f"unknown admission action {self.action!r}")


class AdmissionPolicy:
    """Base class; subclasses implement :meth:`decide`."""

    name = "policy"

    def decide(self, ctx: AdmissionContext) -> AdmissionDecision:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AdmitAllPolicy(AdmissionPolicy):
    """The naive FIFO baseline: every request runs, the budget be damned."""

    name = "admit-all"

    def decide(self, ctx: AdmissionContext) -> AdmissionDecision:
        return AdmissionDecision(ADMIT, "admit-all")


class HardBudgetPolicy(AdmissionPolicy):
    """Admit only when the *worst-case* cost fits the budget chain.

    This is the interface-as-contract reading (§4.1): the guarantee mode
    bounds what the request can possibly cost, so an admitted stream can
    never overdraw by more than one in-flight request.  When the worst
    case does not fit, the policy prefers a degraded variant that does,
    then a bounded defer while the bucket refills, then rejection.
    """

    name = "hard"

    def __init__(self, max_deferrals: int = 4,
                 defer_horizon_s: float = 1.0) -> None:
        self.max_deferrals = max_deferrals
        self.defer_horizon_s = defer_horizon_s

    def decide(self, ctx: AdmissionContext) -> AdmissionDecision:
        if ctx.budget.can_draw(ctx.worst_joules, ctx.now):
            return AdmissionDecision(ADMIT, "worst-case fits budget")
        if (ctx.has_degraded
                and ctx.budget.can_draw(ctx.degraded_worst_joules, ctx.now)):
            return AdmissionDecision(DEGRADE, "degraded worst-case fits")
        wait = ctx.budget.time_until_affordable(ctx.worst_joules, ctx.now)
        if ctx.deferrals < self.max_deferrals and wait <= self.defer_horizon_s:
            return AdmissionDecision(
                DEFER, f"affordable in {wait:.3g} s")
        return AdmissionDecision(REJECT, "budget exhausted")


class ProbabilisticPolicy(AdmissionPolicy):
    """Admit with a probability that falls as the bucket drains.

    Random early shedding: with ``gamma`` > 1 the policy stays permissive
    until the bucket is low, then sheds steeply — the energy analogue of
    RED queue management.  Admission additionally requires the *expected*
    cost to fit (an expectation-level guard, weaker than
    :class:`HardBudgetPolicy`'s guarantee, so overdrafts settle against
    the bucket as deficit).
    """

    name = "probabilistic"

    def __init__(self, rng: np.random.Generator | int | None = None,
                 gamma: float = 2.0) -> None:
        if gamma <= 0:
            raise ServingError(f"gamma must be positive, got {gamma}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(0 if rng is None else rng)
        self._rng = rng
        self.gamma = gamma

    def decide(self, ctx: AdmissionContext) -> AdmissionDecision:
        if not ctx.budget.can_draw(ctx.expected_joules, ctx.now):
            return AdmissionDecision(REJECT, "expected cost does not fit")
        p_admit = ctx.budget.fill_fraction(ctx.now) ** self.gamma
        if self._rng.random() < p_admit:
            return AdmissionDecision(ADMIT, f"p={p_admit:.2f}")
        return AdmissionDecision(REJECT, f"early shed, p={p_admit:.2f}")


class QuantileBudgetPolicy(AdmissionPolicy):
    """Admit when the tail-quantile cost fits the budget chain.

    Sits between :class:`HardBudgetPolicy` (guarantee, often loose) and
    :class:`ProbabilisticPolicy`'s expectation guard: the gateway's
    batched Monte Carlo engine estimates the q-quantile of the cost
    distribution online, and admission requires that tail bound to fit —
    at most a ``1-q`` chance the request overdraws.  Falls back to the
    worst case when the gateway was not configured with
    ``admission_quantile``.
    """

    name = "quantile"

    def __init__(self, max_deferrals: int = 4,
                 defer_horizon_s: float = 1.0) -> None:
        self.max_deferrals = max_deferrals
        self.defer_horizon_s = defer_horizon_s

    def decide(self, ctx: AdmissionContext) -> AdmissionDecision:
        bound = (ctx.quantile_joules if ctx.quantile_joules is not None
                 else ctx.worst_joules)
        if ctx.budget.can_draw(bound, ctx.now):
            return AdmissionDecision(ADMIT, "quantile cost fits budget")
        if (ctx.has_degraded
                and ctx.budget.can_draw(ctx.degraded_worst_joules, ctx.now)):
            return AdmissionDecision(DEGRADE, "degraded worst-case fits")
        wait = ctx.budget.time_until_affordable(bound, ctx.now)
        if ctx.deferrals < self.max_deferrals and wait <= self.defer_horizon_s:
            return AdmissionDecision(DEFER, f"affordable in {wait:.3g} s")
        return AdmissionDecision(REJECT, "budget exhausted")


class SLOAwarePolicy(AdmissionPolicy):
    """Balance the energy budget against a latency SLO.

    Queueing delay already past the SLO means admitting only wastes
    energy on a response nobody waits for — shed instead.  Within the
    SLO, behave like the hard policy, but only defer when the predicted
    budget wait still leaves the request inside its latency target.
    """

    name = "slo"

    def __init__(self, slo_seconds: float,
                 max_deferrals: int = 4) -> None:
        if slo_seconds <= 0:
            raise ServingError(f"the SLO must be positive, got {slo_seconds}")
        self.slo_seconds = slo_seconds
        self.max_deferrals = max_deferrals

    def decide(self, ctx: AdmissionContext) -> AdmissionDecision:
        if ctx.wait_estimate_s > self.slo_seconds:
            return AdmissionDecision(
                REJECT, f"queue wait {ctx.wait_estimate_s:.3g} s > SLO")
        if ctx.budget.can_draw(ctx.worst_joules, ctx.now):
            return AdmissionDecision(ADMIT, "worst-case fits budget")
        if (ctx.has_degraded
                and ctx.budget.can_draw(ctx.degraded_worst_joules, ctx.now)):
            return AdmissionDecision(DEGRADE, "degraded worst-case fits")
        wait = ctx.budget.time_until_affordable(ctx.worst_joules, ctx.now)
        if (ctx.deferrals < self.max_deferrals
                and ctx.wait_estimate_s + wait <= self.slo_seconds):
            return AdmissionDecision(
                DEFER, f"affordable in {wait:.3g} s, inside SLO")
        return AdmissionDecision(REJECT, "budget exhausted within SLO")
