"""The energy-aware serving gateway: request lifecycle on the sim engine.

The gateway closes the loop the paper leaves open: energy interfaces
enable *online* decisions, so here a stream of requests (from
:mod:`repro.workloads.arrivals`) flows through admission control before a
single Joule is spent.  For each request the gateway

1. evaluates the app's energy interface in ``"expected"`` and ``"worst"``
   mode (through the :class:`~repro.serving.evalcache.EvalCache`, keyed
   on the abstract input and the managers' ECV bindings),
2. asks the :class:`~repro.serving.admission.AdmissionPolicy` whether the
   predicted cost fits the hierarchical
   :class:`~repro.serving.budget.EnergyBudget`,
3. dispatches, degrades, defers or sheds accordingly, and
4. settles the *measured* ledger energy (request work plus the static
   power the node burned meanwhile) against the budget — predictions
   gate, ground truth pays.

Two clocks cooperate: the discrete-event engine owns arrivals, queueing
and backpressure; the machine clock owns execution and energy.  The
gateway keeps them aligned — the machine idles (burning static power) up
to each dispatch instant, and the dispatcher holds the simulated server
for exactly the time the hardware took.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core.errors import CalibrationStale, ServingError
from repro.core.policy import Policy, resolve_policy
from repro.core.session import EvalSession
from repro.core.units import as_joules
from repro.faults.resilient import ResilientEvaluator
from repro.serving.admission import (
    ADMIT,
    DEFER,
    DEGRADE,
    AdmissionContext,
    AdmissionPolicy,
)
from repro.serving.adapters import ServiceAdapter
from repro.serving.budget import EnergyBudget
from repro.serving.evalcache import EvalCache
from repro.serving.metrics import RequestRecord, ServingMetrics, ServingReport

__all__ = ["GatewayConfig", "EnergyAwareGateway", "zip_arrivals"]


def zip_arrivals(times: list[float], requests: Iterable[Any]
                 ) -> list[tuple[float, Any]]:
    """Pair arrival timestamps with requests (lengths must agree)."""
    requests = list(requests)
    if len(times) != len(requests):
        raise ServingError(
            f"{len(times)} arrival times for {len(requests)} requests")
    return list(zip(times, requests))


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables for the request lifecycle.

    Evaluation knobs live on one declarative
    :class:`~repro.core.policy.Policy` (``policy=``): the Monte Carlo
    engine, the admission quantile and the resilience settings (retry /
    deadline / degradation ladder).  The historical per-knob keywords
    ``mc_engine=`` and ``admission_quantile=`` still work — they are
    merged into the policy with a ``DeprecationWarning`` — and after
    construction ``config.mc_engine`` / ``config.admission_quantile``
    always read as the *resolved* values, so existing call sites keep
    working unchanged.
    """

    max_queue: int = 64            # backpressure bound; overflow is shed
    defer_delay_s: float = 0.05    # hold time before a deferred retry
    ewma_alpha: float = 0.2        # service-time estimator smoothing
    #: Deprecated spelling of ``policy.mc_engine``; ``None`` defers to
    #: the policy (whose unset default resolves to "vector").
    mc_engine: str | None = None
    #: Deprecated spelling of ``policy.admission_quantile``.
    admission_quantile: float | None = None
    #: Every evaluation/serving knob, declaratively (see
    #: :class:`repro.core.policy.Policy`).
    policy: Policy | None = None

    def __post_init__(self) -> None:
        resolved = resolve_policy(self.policy,
                                  mc_engine=self.mc_engine,
                                  admission_quantile=self.admission_quantile,
                                  stacklevel=4)
        # Frozen dataclass: fields are finalised through the back door so
        # readers always see the resolved, never-None policy and the
        # effective engine/quantile regardless of which spelling was used.
        object.__setattr__(self, "policy", resolved)
        object.__setattr__(self, "mc_engine",
                           resolved.mc_engine
                           if resolved.mc_engine is not None else "vector")
        object.__setattr__(self, "admission_quantile",
                           resolved.admission_quantile)


@dataclass
class _QueueItem:
    request: Any
    request_id: int
    arrival_s: float
    deferrals: int = 0
    costs: tuple[float, float] | None = field(default=None, repr=False)


class EnergyAwareGateway:
    """Admission-controlled serving of a request stream under a budget."""

    def __init__(self, adapter: ServiceAdapter, budget: EnergyBudget,
                 policy: AdmissionPolicy,
                 cache: EvalCache | None = None,
                 config: GatewayConfig | None = None) -> None:
        self.adapter = adapter
        self.budget = budget
        self.policy = policy
        self.cache = cache if cache is not None else EvalCache()
        self.config = config if config is not None else GatewayConfig()
        # All gateway predictions run through one session whose hook chain
        # holds the eval cache; extra hooks (a SpanRecorder for
        # per-request call trees, an AccountingHook for budget
        # accounting) can be added via ``gateway.session.add_hook``.
        self.session = EvalSession(hooks=[self.cache.hook],
                                   engine=self.config.mc_engine,
                                   policy=self.config.policy)
        self.resilient = ResilientEvaluator(self.session, self.config.policy)
        self.metrics = ServingMetrics()
        self._ewma_service_s = 0.0
        self._ledger_mark = 0.0
        self._eval_status: str | None = None
        self._eval_faults: list[str] = []
        # The calibration guard watches served predictions against
        # measured energy; stale predictions are widened or rejected per
        # the policy, never trusted silently.
        self.calibration_guard = None
        if self.config.policy.calibration_tolerance is not None:
            from repro.calibration.guard import CalibrationGuard
            self.calibration_guard = CalibrationGuard(
                self.config.policy.calibration_tolerance,
                min_observations=self.config.policy
                .calibration_min_observations)

    def inject_faults(self, plan) -> Any:
        """Install a :class:`repro.faults.FaultPlan` on the session.

        Returns the installed :class:`repro.faults.FaultHook` so callers
        can read injection statistics after the run; predictions
        automatically switch to the resilient retry/degrade path.
        """
        from repro.faults import FaultHook

        return FaultHook(plan).install(self.session)

    # -- cost evaluation ---------------------------------------------------------
    _STATUS_RANK = {"ok": 0, "degraded-cache": 1, "degraded-bound": 2,
                    "rejected": 3}

    def _resilient_active(self) -> bool:
        """Predictions go through retry/deadline/degrade when either a
        fault plan is installed or the policy asks for resilience; the
        plain path stays byte-for-byte the historical one otherwise."""
        return (self.session.fault_hook is not None
                or self.config.policy.resilient)

    def _note_outcome(self, *outcomes) -> None:
        for outcome in outcomes:
            self._eval_faults.extend(outcome.faults)
            if (self._eval_status is None
                    or self._STATUS_RANK[outcome.status]
                    > self._STATUS_RANK[self._eval_status]):
                self._eval_status = outcome.status

    def _predict(self, request: Any) -> tuple[float, float] | None:
        """(expected, worst) Joules for ``request`` via the session.

        ``None`` means prediction was impossible: every retry failed and
        the degradation ladder declined — the caller sheds the request
        instead of admitting blind.
        """
        call, env, fingerprint = self._cost_query(request)
        if not self._resilient_active():
            backend = self.session.backend
            expected = backend.mean(call, session=self.session, env=env,
                                    fingerprint=fingerprint)
            worst = backend.worst(call, session=self.session, env=env,
                                  fingerprint=fingerprint)
            return expected, worst
        expected_out = self.resilient.evaluate_call(
            call, mode="expected", env=env, fingerprint=fingerprint)
        worst_out = self.resilient.evaluate_call(
            call, mode="worst", env=env, fingerprint=fingerprint)
        self._note_outcome(expected_out, worst_out)
        if not (expected_out.accepted and worst_out.accepted):
            return None
        return (as_joules(expected_out.value),
                as_joules(worst_out.value))

    def _predict_quantile(self, request: Any) -> float | None:
        """q-quantile Joules for ``request`` (None unless configured).

        Runs a distribution-mode evaluation through the session's batched
        Monte Carlo engine; the resulting :class:`EnergyCall` is keyed, so
        repeat requests with the same abstract input hit the eval cache
        and the sampling cost is paid once per distinct input.
        """
        q = self.config.admission_quantile
        if q is None:
            return None
        call, env, fingerprint = self._cost_query(request)
        if self._resilient_active():
            outcome = self.resilient.evaluate_call(
                call, mode="distribution", env=env, fingerprint=fingerprint)
            self._note_outcome(outcome)
            if not outcome.accepted:
                return None  # the quantile refinement is optional
            dist = outcome.value
            if not hasattr(dist, "quantile"):
                # A degraded tier answered with a point bound, not a
                # distribution; use it directly as the tail estimate.
                return float(as_joules(dist))
            return float(dist.quantile(q))
        return self.session.backend.quantile(
            call, q, session=self.session, env=env, fingerprint=fingerprint)

    def _cost_query(self, request: Any):
        method, args = self.adapter.cost_call(request)
        env = self.adapter.current_bindings()
        fingerprint = self.adapter.binding_fingerprint()
        return self.adapter.interface(method, *args), env, fingerprint

    # -- clock/energy bookkeeping ------------------------------------------------
    def _settle(self, engine_now: float) -> None:
        """Advance the machine to the engine clock and charge the ledger
        delta (request work + static idle power) to the budget."""
        machine = self.adapter.machine
        target = engine_now + self._machine_offset
        if target > machine.now:
            machine.advance_to(target)
        total = machine.ledger.total_joules()
        delta = total - self._ledger_mark
        if delta > 0.0:
            self.budget.force_draw(delta, engine_now)
            self._ledger_mark = total

    # -- the run -------------------------------------------------------------------
    def serve(self, arrivals: Iterable[tuple[float, Any]],
              horizon: float | None = None) -> ServingReport:
        """Serve ``(arrival_time, request)`` pairs; returns the report.

        ``horizon`` extends the run past the last completion (the node
        keeps idling and the budget keeps refilling), which makes energy
        comparisons across runs use a common window.
        """
        from repro.sim.engine import Engine

        timed = sorted(arrivals, key=lambda pair: pair[0])
        engine = Engine()
        machine = self.adapter.machine
        self._machine_offset = machine.now
        self._ledger_mark = machine.ledger.total_joules()
        ledger_start = self._ledger_mark
        config = self.config

        queue: deque[_QueueItem] = deque()
        state = {"arrivals_done": False, "outstanding_deferred": 0}
        wake = [engine.event("wake")]

        def notify() -> None:
            if not wake[0].triggered:
                wake[0].succeed()

        def arrival_process() -> Iterator:
            previous = 0.0
            for index, (t, request) in enumerate(timed):
                if t > previous:
                    yield engine.timeout(t - previous)
                    previous = t
                if len(queue) >= config.max_queue:
                    self.metrics.shed_queue_full += 1
                    self.metrics.add(RequestRecord(
                        request_id=index, arrival_s=t, decision="shed",
                        reason="queue full"))
                    continue
                queue.append(_QueueItem(request, index, t))
                notify()
            state["arrivals_done"] = True
            notify()

        def requeue_later(item: _QueueItem) -> Iterator:
            yield engine.timeout(config.defer_delay_s)
            state["outstanding_deferred"] -= 1
            queue.append(item)
            notify()

        def dispatcher() -> Iterator:
            while True:
                if not queue:
                    if (state["arrivals_done"]
                            and state["outstanding_deferred"] == 0):
                        return
                    wake[0] = engine.event("wake")
                    yield wake[0]
                    continue
                item = queue.popleft()
                now = engine.now
                self._settle(now)
                busy = self._decide_and_run(item, now, spawn_defer)
                if busy is not None:
                    yield engine.timeout(busy)

        def spawn_defer(item: _QueueItem) -> None:
            state["outstanding_deferred"] += 1
            engine.process(requeue_later(item), name=f"defer-{item.request_id}")

        self._live_queue = queue
        engine.process(arrival_process(), name="arrivals")
        engine.process(dispatcher(), name="dispatcher")
        engine.run()
        end = engine.now
        if horizon is not None and horizon > end:
            end = engine.run(until=horizon)
        self._settle(end)
        self.metrics.window = (self._machine_offset, machine.now)

        ledger_joules = machine.ledger.total_joules() - ledger_start
        allowance = self.budget.cumulative_allowance(end)
        fault_hook = self.session.fault_hook
        return self.metrics.summary(
            horizon_s=end,
            ledger_joules=ledger_joules,
            allowance_joules=allowance,
            cache_stats=self.cache.stats(),
            mc_engine=self.session.engine.name,
            fault_stats=(fault_hook.stats()
                         if fault_hook is not None else None),
        )

    # -- one decision --------------------------------------------------------------
    def _decide_and_run(self, item: _QueueItem, now: float, spawn_defer):
        """Decide one queued request; returns server-hold seconds or None
        (None when the request did not occupy the server)."""
        self._eval_status = None
        self._eval_faults = []
        predicted = self._predict(item.request)
        if predicted is None:
            # Prediction failed past the whole degradation ladder:
            # admitting blind would void the budget contract, so shed.
            self.metrics.add(RequestRecord(
                request_id=item.request_id,
                arrival_s=item.arrival_s,
                decision="reject",
                reason="evaluation rejected: "
                       + ",".join(sorted(set(self._eval_faults))),
                deferrals=item.deferrals,
                eval_status="rejected",
                eval_faults=tuple(self._eval_faults),
            ))
            return None
        expected, worst = predicted
        stale: CalibrationStale | None = None
        if self.calibration_guard is not None:
            try:
                self.calibration_guard.check()
            except CalibrationStale as err:
                stale = err
        if stale is not None:
            if self.config.policy.calibration_action == "reject":
                self.metrics.add(RequestRecord(
                    request_id=item.request_id,
                    arrival_s=item.arrival_s,
                    decision="reject",
                    reason=f"calibration stale: residual "
                           f"{stale.residual:.3f} > {stale.tolerance:.3f}",
                    predicted_expected_j=expected,
                    predicted_worst_j=worst,
                    deferrals=item.deferrals,
                    eval_status=self._eval_status,
                    eval_faults=tuple(self._eval_faults),
                    calibration_stale=True,
                ))
                return None
            # "widen": keep serving, but admission must cover the drifted
            # hardware — inflate the worst-case bound.
            worst *= self.config.policy.calibration_widen_factor
        quantile = self._predict_quantile(item.request)
        item.costs = (expected, worst)
        degraded_request = self.adapter.degrade(item.request)
        degraded_costs: tuple[float, float] | None = None
        if degraded_request is not None:
            degraded_costs = self._predict(degraded_request)
            if degraded_costs is not None and stale is not None:
                degraded_costs = (
                    degraded_costs[0],
                    degraded_costs[1]
                    * self.config.policy.calibration_widen_factor)

        ctx = AdmissionContext(
            now=now,
            budget=self.budget,
            expected_joules=expected,
            worst_joules=worst,
            quantile_joules=quantile,
            queue_depth=len(self._queue_view()),
            wait_estimate_s=self._wait_estimate(),
            deferrals=item.deferrals,
            degraded_expected_joules=(degraded_costs[0]
                                      if degraded_costs else None),
            degraded_worst_joules=(degraded_costs[1]
                                   if degraded_costs else None),
        )
        decision = self.policy.decide(ctx)

        if decision.action == DEFER:
            item.deferrals += 1
            self.metrics.deferred_total += 1
            spawn_defer(item)
            return None

        if decision.action in (ADMIT, DEGRADE):
            request = item.request
            predicted = (expected, worst)
            degraded = False
            if decision.action == DEGRADE:
                if degraded_request is None:
                    raise ServingError(
                        f"policy {self.policy.name!r} degraded a request "
                        f"with no degraded variant")
                if degraded_costs is None:
                    # The degraded variant's own prediction was rejected
                    # by the fault ladder: admitting it blind is worse
                    # than shedding.
                    self.metrics.add(RequestRecord(
                        request_id=item.request_id,
                        arrival_s=item.arrival_s,
                        decision="reject",
                        reason="degraded variant unpredictable",
                        deferrals=item.deferrals,
                        eval_status="rejected",
                        eval_faults=tuple(self._eval_faults),
                    ))
                    return None
                request = degraded_request
                predicted = degraded_costs
                degraded = True
            machine = self.adapter.machine
            t0_machine = machine.now
            joules_before = machine.ledger.total_joules()
            self.adapter.execute(request)
            busy = machine.now - t0_machine
            measured = machine.ledger.total_joules() - joules_before
            self._settle(now)  # charges `measured` to the budget
            if self.calibration_guard is not None:
                self.calibration_guard.observe(predicted[0], measured)
            self._ewma_service_s = (
                busy if self._ewma_service_s == 0.0
                else (self.config.ewma_alpha * busy
                      + (1 - self.config.ewma_alpha) * self._ewma_service_s))
            self.metrics.add(RequestRecord(
                request_id=item.request_id,
                arrival_s=item.arrival_s,
                decision=decision.action,
                reason=decision.reason,
                start_s=now,
                finish_s=now + busy,
                machine_start_s=t0_machine,
                machine_finish_s=machine.now,
                predicted_expected_j=predicted[0],
                predicted_worst_j=predicted[1],
                predicted_quantile_j=quantile,
                measured_j=measured,
                deferrals=item.deferrals,
                degraded=degraded,
                eval_status=self._eval_status,
                eval_faults=tuple(self._eval_faults),
                calibration_stale=stale is not None,
            ))
            return busy

        # REJECT
        self.metrics.add(RequestRecord(
            request_id=item.request_id,
            arrival_s=item.arrival_s,
            decision="reject",
            reason=decision.reason,
            predicted_expected_j=expected,
            predicted_worst_j=worst,
            deferrals=item.deferrals,
            eval_status=self._eval_status,
            eval_faults=tuple(self._eval_faults),
            calibration_stale=stale is not None,
        ))
        return None

    # -- small helpers ----------------------------------------------------------
    def _wait_estimate(self) -> float:
        """Predicted queueing delay from the service-time EWMA."""
        return len(self._queue_view()) * self._ewma_service_s

    def _queue_view(self):
        # The dispatcher closes over its own deque; expose the live one.
        return getattr(self, "_live_queue", ())

    def __repr__(self) -> str:
        return (f"EnergyAwareGateway(adapter={self.adapter.name!r}, "
                f"policy={self.policy.name!r}, budget={self.budget.name!r})")
