"""Energy-aware serving: online admission control against energy budgets.

The paper's energy interfaces answer "how much would this cost?" *before*
execution; this package turns that into a serving-time control loop:

* :mod:`repro.serving.budget` — replenishing, hierarchical energy token
  buckets composed along the Fig. 2 stack;
* :mod:`repro.serving.admission` — pluggable admit/degrade/defer/reject
  policies over predicted costs;
* :mod:`repro.serving.evalcache` — memoized interface evaluation keyed
  by abstract input + ECV-environment fingerprint (the hot-path
  optimisation that makes per-request prediction affordable);
* :mod:`repro.serving.adapters` — bridges to the repository's apps
  (ML web service, flash KV store, GPT-2 runtime);
* :mod:`repro.serving.gateway` — the request lifecycle (queueing,
  backpressure, shedding) on the discrete-event engine;
* :mod:`repro.serving.metrics` — per-request attribution records and the
  operator report.
"""

from repro.serving.adapters import (
    GPT2Adapter,
    KVStoreAdapter,
    MLServiceAdapter,
    ServiceAdapter,
    build_adapter,
)
from repro.serving.admission import (
    ADMIT,
    DEFER,
    DEGRADE,
    REJECT,
    AdmissionContext,
    AdmissionDecision,
    AdmissionPolicy,
    AdmitAllPolicy,
    HardBudgetPolicy,
    ProbabilisticPolicy,
    QuantileBudgetPolicy,
    SLOAwarePolicy,
)
from repro.serving.budget import (
    BudgetManager,
    BudgetSpec,
    EnergyBudget,
    parse_budget_spec,
)
from repro.serving.evalcache import EvalCache, ecv_fingerprint, env_fingerprint
from repro.serving.gateway import EnergyAwareGateway, GatewayConfig, zip_arrivals
from repro.serving.metrics import (
    RequestRecord,
    ServingMetrics,
    ServingReport,
    attribution_report,
    format_report,
)

__all__ = [
    "ServiceAdapter", "MLServiceAdapter", "KVStoreAdapter", "GPT2Adapter",
    "build_adapter",
    "ADMIT", "REJECT", "DEFER", "DEGRADE",
    "AdmissionContext", "AdmissionDecision", "AdmissionPolicy",
    "AdmitAllPolicy", "HardBudgetPolicy", "ProbabilisticPolicy",
    "QuantileBudgetPolicy", "SLOAwarePolicy",
    "BudgetSpec", "parse_budget_spec", "EnergyBudget", "BudgetManager",
    "EvalCache", "ecv_fingerprint", "env_fingerprint",
    "EnergyAwareGateway", "GatewayConfig", "zip_arrivals",
    "RequestRecord", "ServingMetrics", "ServingReport",
    "attribution_report", "format_report",
]
