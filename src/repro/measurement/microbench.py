"""GPU microbenchmarks for unit-energy calibration.

The paper calibrated its hardware energy interfaces by running the
``gpu-cache`` microbenchmark under Nsight Compute and measuring "the
energy for the individual metrics".  This module is our analogue: a small
suite of kernels whose counter footprints span the metric space —

* ``pointer_chase(footprint)`` — latency-bound loads whose hit level
  (L1 / L2 / VRAM) follows the footprint, exactly like gpu-cache;
* ``stream(n)`` — bandwidth-bound streaming with high row locality;
* ``compute(n)`` — ALU-bound FMA loops, negligible memory traffic;
* ``scatter(n)`` — random-access loads with poor row locality.

Running the suite yields :class:`MicrobenchSample` rows — (counter deltas,
measured Joules, duration) — from which
:mod:`repro.measurement.calibration` recovers per-metric unit energies by
least squares.  Because measurement happens through the NVML channel and
row-activation energy is invisible to the counters, the recovered values
carry realistic calibration error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import MeasurementError
from repro.hardware.gpu import GPU, KernelProfile, SECTOR_BYTES, WAVEFRONT_BYTES
from repro.measurement.nvml import NVMLSim

__all__ = ["MicrobenchSample", "pointer_chase", "stream", "compute",
           "scatter", "default_suite", "run_suite"]

#: Cache capacities assumed by the footprint sweep (bytes).
L1_CAPACITY = 128 * 1024
L2_CAPACITY = 48 * 1024 * 1024


@dataclass(frozen=True)
class MicrobenchSample:
    """One calibration observation."""

    kernel: str
    counters: dict[str, float]
    measured_joules: float
    duration: float


def pointer_chase(footprint_bytes: int, accesses: float = 4e6) -> KernelProfile:
    """Dependent loads over a ``footprint_bytes`` working set.

    Small footprints hit L1; mid-size footprints hit L2; large footprints
    stream from VRAM.  Every access executes a handful of instructions
    (address arithmetic + load), as in gpu-cache.
    """
    if footprint_bytes <= 0:
        raise MeasurementError("footprint must be positive")
    instructions = accesses * 4
    l1_wavefronts = accesses  # every load consults L1
    if footprint_bytes <= L1_CAPACITY:
        l2_sectors = accesses * 0.02
        vram_sectors = accesses * 0.002
        row_miss = 0.01
    elif footprint_bytes <= L2_CAPACITY:
        l2_sectors = accesses
        vram_sectors = accesses * 0.05
        row_miss = 0.02
    else:
        l2_sectors = accesses
        vram_sectors = accesses
        row_miss = 0.03
    return KernelProfile(
        name=f"pointer_chase[{footprint_bytes}B]",
        instructions=instructions,
        l1_wavefronts=l1_wavefronts,
        l2_sectors=l2_sectors,
        vram_sectors=vram_sectors,
        row_miss_fraction=row_miss,
    )


def stream(n_bytes: float = 256e6) -> KernelProfile:
    """Streaming triad: sequential read/write, excellent row locality."""
    if n_bytes <= 0:
        raise MeasurementError("stream size must be positive")
    vram_sectors = n_bytes / SECTOR_BYTES
    return KernelProfile(
        name=f"stream[{int(n_bytes)}B]",
        instructions=n_bytes / WAVEFRONT_BYTES * 6,
        l1_wavefronts=n_bytes / WAVEFRONT_BYTES,
        l2_sectors=vram_sectors,
        vram_sectors=vram_sectors,
        row_miss_fraction=0.015,
    )


def compute(n_instructions: float = 2e9) -> KernelProfile:
    """ALU-bound FMA loop: isolates instruction energy."""
    if n_instructions <= 0:
        raise MeasurementError("instruction count must be positive")
    return KernelProfile(
        name=f"compute[{int(n_instructions)}]",
        instructions=n_instructions,
        l1_wavefronts=n_instructions * 0.01,
        l2_sectors=n_instructions * 0.001,
        vram_sectors=n_instructions * 0.0001,
        row_miss_fraction=0.02,
    )


def scatter(n_accesses: float = 3e6) -> KernelProfile:
    """Random-access loads: every access misses rows aggressively."""
    if n_accesses <= 0:
        raise MeasurementError("access count must be positive")
    return KernelProfile(
        name=f"scatter[{int(n_accesses)}]",
        instructions=n_accesses * 6,
        l1_wavefronts=n_accesses,
        l2_sectors=n_accesses,
        vram_sectors=n_accesses,
        row_miss_fraction=0.25,
    )


def default_suite() -> list[KernelProfile]:
    """The calibration suite: a footprint sweep plus the corner kernels."""
    footprints = [32 * 1024, 64 * 1024, 512 * 1024, 4 * 1024 * 1024,
                  16 * 1024 * 1024, 96 * 1024 * 1024, 512 * 1024 * 1024]
    suite = [pointer_chase(footprint) for footprint in footprints]
    suite.extend([
        stream(64e6), stream(256e6), stream(1e9),
        compute(5e8), compute(2e9), compute(8e9),
        scatter(1e6), scatter(4e6),
    ])
    return suite


def run_suite(gpu: GPU, nvml: NVMLSim,
              suite: list[KernelProfile] | None = None,
              repeats: int = 20,
              min_measure_seconds: float = 0.25,
              settle_seconds: float = 0.002) -> list[MicrobenchSample]:
    """Execute the suite, measuring each kernel group through NVML.

    Each kernel is launched back-to-back at least ``repeats`` times *and*
    for at least ``min_measure_seconds`` (as gpu-cache does) so the
    measured energy dwarfs counter quantisation and spans several counter
    update periods.  Returns one sample per kernel with the *counter
    deltas* an Nsight-style profiler would report.
    """
    if repeats < 1:
        raise MeasurementError("repeats must be >= 1")
    if min_measure_seconds <= 0:
        raise MeasurementError("min_measure_seconds must be positive")
    kernels = suite if suite is not None else default_suite()
    samples: list[MicrobenchSample] = []
    for kernel in kernels:
        gpu.idle(settle_seconds)
        before_counters = gpu.counters.snapshot()
        t_start = gpu.now
        launches = 0
        while launches < repeats or gpu.now - t_start < min_measure_seconds:
            gpu.launch(kernel, tag=f"microbench:{kernel.name}")
            launches += 1
        t_end = gpu.now
        delta = gpu.counters.delta(before_counters)
        measured = nvml.measure_interval(t_start, t_end)
        samples.append(MicrobenchSample(
            kernel=kernel.name,
            counters=delta.as_dict(),
            measured_joules=measured,
            duration=t_end - t_start,
        ))
    return samples
