"""Least-squares recovery of per-metric unit energies.

Given microbenchmark samples (counter deltas + measured Joules), fit the
paper's linear energy model

``E = e_instr·instructions + e_l1·l1_wavefronts + e_l2·l2_sectors
     + e_vram·vram_sectors + e_launch·kernel_launches
     + p_static·duration``

by non-negative least squares (projected-gradient refinement on top of an
unconstrained ``lstsq`` seed — unit energies cannot be negative).  The
result, :class:`CalibratedModel`, is the *hardware energy interface* the
GPT-2 interface in :mod:`repro.llm.interface` grounds its abstract counts
with.  Because measurement is noisy and row-activation energy is hidden,
the fit differs from the simulator's ground truth — this calibration error
is one of the honest error sources benchmark T1 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import MeasurementError
from repro.measurement.microbench import MicrobenchSample

__all__ = ["CalibratedModel", "fit_unit_energies", "measure_static_power",
           "measure_launch_energy", "calibrate_gpu", "METRICS",
           "DYNAMIC_METRICS"]

#: The model's regressors, in column order.
METRICS = ("instructions", "l1_wavefronts", "l2_sectors", "vram_sectors",
           "kernel_launches", "busy_seconds")

#: The dynamic (per-event) regressors, fitted once static power is known.
DYNAMIC_METRICS = METRICS[:-1]


@dataclass(frozen=True)
class CalibratedModel:
    """Per-metric unit energies recovered from calibration."""

    gpu_name: str
    unit_energies: dict[str, float]   # J per event; busy_seconds -> Watts
    residual_rms: float               # RMS relative residual over samples
    n_samples: int

    def predict_joules(self, counters: dict[str, float]) -> float:
        """The linear model applied to a counter vector."""
        return sum(self.unit_energies[metric] * counters.get(metric, 0.0)
                   for metric in METRICS)

    @property
    def static_power_w(self) -> float:
        """The fitted static power (coefficient of busy_seconds)."""
        return self.unit_energies["busy_seconds"]

    def to_json(self) -> str:
        """Serialise the calibrated interface (shareable, versionable).

        Vendors shipping hardware energy interfaces (§3) would publish
        exactly this: the per-metric unit costs plus provenance.
        """
        import json

        return json.dumps({
            "format": "repro.calibrated-model/1",
            "gpu_name": self.gpu_name,
            "unit_energies": self.unit_energies,
            "residual_rms": self.residual_rms,
            "n_samples": self.n_samples,
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "CalibratedModel":
        """Load a serialised calibrated interface."""
        import json

        data = json.loads(payload)
        if data.get("format") != "repro.calibrated-model/1":
            raise MeasurementError(
                f"unknown calibration format {data.get('format')!r}")
        missing = set(METRICS) - set(data.get("unit_energies", {}))
        if missing:
            raise MeasurementError(
                f"calibration payload missing metrics: {sorted(missing)}")
        return cls(
            gpu_name=data["gpu_name"],
            unit_energies={metric: float(value) for metric, value
                           in data["unit_energies"].items()},
            residual_rms=float(data["residual_rms"]),
            n_samples=int(data["n_samples"]),
        )

    def describe(self) -> str:
        """Human-readable rendering of the calibrated interface."""
        lines = [f"calibrated hardware energy interface for {self.gpu_name}"]
        for metric in METRICS:
            value = self.unit_energies[metric]
            unit = "W" if metric == "busy_seconds" else "J/event"
            lines.append(f"  {metric:16s} = {value:.4e} {unit}")
        lines.append(f"  fit residual (RMS, relative): {self.residual_rms:.2%} "
                     f"over {self.n_samples} samples")
        return "\n".join(lines)


def _project_nonnegative(design: np.ndarray, target: np.ndarray,
                         seed: np.ndarray, iterations: int = 2000) -> np.ndarray:
    """Projected-gradient refinement enforcing non-negative coefficients."""
    coeffs = np.clip(seed, 0.0, None)
    # Lipschitz step from the largest eigenvalue of the normal matrix.
    gram = design.T @ design
    step = 1.0 / max(np.linalg.eigvalsh(gram).max(), 1e-30)
    for _ in range(iterations):
        gradient = design.T @ (design @ coeffs - target)
        updated = np.clip(coeffs - step * gradient, 0.0, None)
        if np.allclose(updated, coeffs, rtol=1e-12, atol=0.0):
            break
        coeffs = updated
    return coeffs


def fit_unit_energies(samples: list[MicrobenchSample],
                      gpu_name: str = "gpu",
                      fixed: dict[str, float] | None = None) -> CalibratedModel:
    """Fit the linear counter model to microbenchmark observations.

    ``fixed`` pins coefficients measured out-of-band — static power from an
    idle window (:func:`measure_static_power`), launch overhead from an
    empty-kernel sweep (:func:`measure_launch_energy`).  Their contribution
    is subtracted from every sample and only the remaining coefficients
    are fitted.  Pinning matters for identifiability: all-busy
    microbenchmarks make the duration column collinear with the dominant
    counter, and the near-constant launch column otherwise soaks up every
    systematic residual.

    Rows are weighted by ``1 / target`` so every sample contributes its
    *relative* error — otherwise the large streaming kernels dominate and
    the compute-kernel coefficients drown in their residuals.
    """
    pinned = dict(fixed or {})
    for metric in pinned:
        if metric not in METRICS:
            raise MeasurementError(f"unknown pinned metric {metric!r}")
    fit_metrics = [metric for metric in METRICS if metric not in pinned]
    if len(samples) < len(fit_metrics):
        raise MeasurementError(
            f"need at least {len(fit_metrics)} samples to fit "
            f"{len(fit_metrics)} coefficients, got {len(samples)}")
    design = np.array([[sample.counters.get(metric, 0.0)
                        for metric in fit_metrics]
                       for sample in samples])
    measured = np.array([sample.measured_joules for sample in samples])
    if np.any(measured <= 0):
        raise MeasurementError("every calibration sample needs positive "
                               "measured energy")
    target = measured.copy()
    for metric, value in pinned.items():
        target -= value * np.array([sample.counters.get(metric, 0.0)
                                    for sample in samples])
    if np.any(target <= 0):
        raise MeasurementError(
            "pinned coefficients exceed measured energy for some samples; "
            "an out-of-band measurement looks wrong")
    weights = 1.0 / target
    weighted_design = design * weights[:, None]
    weighted_target = target * weights
    # Condition the columns so lstsq is numerically sane (counts span ~1e10).
    scales = np.maximum(np.abs(weighted_design).max(axis=0), 1e-30)
    seed, *_ = np.linalg.lstsq(weighted_design / scales, weighted_target,
                               rcond=None)
    coeffs = _project_nonnegative(weighted_design / scales, weighted_target,
                                  seed) / scales
    unit_energies = dict(zip(fit_metrics, (float(c) for c in coeffs)))
    unit_energies.update({metric: float(value)
                          for metric, value in pinned.items()})
    full = np.array([[sample.counters.get(metric, 0.0) for metric in METRICS]
                     for sample in samples])
    predictions = full @ np.array([unit_energies[m] for m in METRICS])
    residual_rms = float(np.sqrt(np.mean(
        ((predictions - measured) / measured) ** 2)))
    return CalibratedModel(gpu_name=gpu_name, unit_energies=unit_energies,
                           residual_rms=residual_rms, n_samples=len(samples))


def measure_static_power(gpu, nvml, seconds: float = 2.0,
                         settle_seconds: float = 0.05) -> float:
    """Estimate static power from an idle window, in Watts.

    The standard recipe: let the device settle, then difference the energy
    counter across an idle interval.  Note the estimate is taken at the
    device's *current* temperature — calibrating cold and predicting hot
    leaves a leakage gap, which is part of the realistic error budget.
    """
    if seconds <= 0:
        raise MeasurementError("idle measurement needs a positive duration")
    gpu.idle(settle_seconds)
    t_start = gpu.now
    gpu.idle(seconds)
    measured = nvml.measure_interval(t_start, gpu.now)
    return measured / seconds


def measure_launch_energy(gpu, nvml, static_power_w: float,
                          seconds: float = 1.0) -> float:
    """Estimate per-launch overhead energy from an empty-kernel sweep.

    Launch a stream of no-op kernels, subtract the static contribution and
    divide by the launch count — the standard launch-overhead
    microbenchmark.
    """
    from repro.hardware.gpu import KernelProfile

    if seconds <= 0:
        raise MeasurementError("launch measurement needs a positive duration")
    empty = KernelProfile("empty", instructions=32, row_miss_fraction=0.0)
    t_start = gpu.now
    launches = 0
    while gpu.now - t_start < seconds:
        gpu.launch(empty, tag="microbench:empty")
        launches += 1
    measured = nvml.measure_interval(t_start, gpu.now)
    dynamic = measured - static_power_w * (gpu.now - t_start)
    return max(dynamic / launches, 0.0)


def calibrate_gpu(gpu, nvml, suite=None, repeats: int = 20,
                  min_measure_seconds: float = 0.25,
                  idle_seconds: float = 2.0) -> CalibratedModel:
    """Deprecated shim for the historical free-function recipe.

    The calibration entry point is now
    :func:`repro.calibration.calibrate` (canonical, keyword-only,
    returning a versioned epoch) with the microbenchmark recipe living
    in :class:`repro.calibration.MicrobenchCalibrator`.  This shim keeps
    the old positional shape working — same arguments, same
    :class:`CalibratedModel` result — but warns.
    """
    import warnings

    warnings.warn(
        "calibrate_gpu(gpu, nvml) is deprecated; use "
        "repro.calibration.calibrate(machine, source=..., ...) (or "
        "MicrobenchCalibrator directly) instead",
        DeprecationWarning, stacklevel=2)
    from repro.calibration.api import MicrobenchCalibrator

    return MicrobenchCalibrator().calibrate_device(
        gpu, nvml, suite=suite, repeats=repeats,
        min_measure_seconds=min_measure_seconds,
        idle_seconds=idle_seconds)
