"""Simulated measurement channels: NVML, RAPL, meters, calibration."""

from repro.measurement.calibration import (
    DYNAMIC_METRICS,
    METRICS,
    CalibratedModel,
    calibrate_gpu,
    fit_unit_energies,
    measure_static_power,
)
from repro.measurement.meter import (
    EnergyMeter,
    Measurement,
    attach_measurement,
    divergence_by_layer,
    ledger_meter,
    nvml_meter,
    rapl_meter,
)
from repro.measurement.microbench import (
    MicrobenchSample,
    compute,
    default_suite,
    pointer_chase,
    run_suite,
    scatter,
    stream,
)
from repro.measurement.nvml import SENSOR_PROFILES, NVMLSensorProfile, NVMLSim
from repro.measurement.rapl import RAPL_DOMAINS, RAPLEnergyCounter, RAPLSim

__all__ = [
    "NVMLSim", "NVMLSensorProfile", "SENSOR_PROFILES",
    "RAPLSim", "RAPLEnergyCounter", "RAPL_DOMAINS",
    "EnergyMeter", "Measurement", "ledger_meter", "nvml_meter", "rapl_meter",
    "attach_measurement", "divergence_by_layer",
    "MicrobenchSample", "pointer_chase", "stream", "compute", "scatter",
    "default_suite", "run_suite",
    "CalibratedModel", "fit_unit_energies", "measure_static_power",
    "calibrate_gpu", "METRICS", "DYNAMIC_METRICS",
]
