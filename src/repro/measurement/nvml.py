"""An NVML-like measurement channel for the simulated GPU.

Real NVML exposes board power (``nvmlDeviceGetPowerUsage``, milli-Watts,
updated at a device-specific interval and averaged over a device-specific
window) and, on recent GPUs, a cumulative energy counter
(``nvmlDeviceGetTotalEnergyConsumption``, milli-Joules).  Both are *views*
of the true consumption: quantised, periodically updated, and — depending
on which rails the board instruments — systematically off by a few
percent.  The 30-series boards instrument fewer rails than the 40-series,
which is one reason the paper's RTX 3070 predictions compare worse against
NVML than the RTX 4090 ones.

:class:`NVMLSim` reproduces those imperfections on top of the ground-truth
:class:`~repro.hardware.ledger.EnergyLedger`.  Because the ledger retains
history, "polling" becomes post-hoc sampling at any timestamp, which keeps
simulated workloads single-threaded.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.errors import MeasurementError
from repro.hardware.gpu import GPU

__all__ = ["NVMLSensorProfile", "NVMLSim", "SENSOR_PROFILES"]

#: Spawn-key tag for NVML sensor noise, alongside the Monte Carlo
#: columns (0xC0/0x0D), faults (0xFA), fleet balancer (0xB7) and drift
#: (0xD1) tags — so measurement noise replays bitwise across engines and
#: never aliases another subsystem's stream.
_NVML_TAG = 0x5E


@dataclass(frozen=True)
class NVMLSensorProfile:
    """Imperfections of one board's power/energy telemetry."""

    name: str
    power_update_period: float = 0.020   # s between register updates
    power_window: float = 0.050          # s of averaging inside the sensor
    power_quantum_w: float = 0.001       # mW resolution
    energy_update_period: float = 0.010  # s between energy-counter updates
    energy_quantum_j: float = 0.001      # mJ resolution
    gain: float = 1.0                    # systematic rail-coverage error
    noise_std: float = 0.0               # relative noise per reading

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise MeasurementError(f"sensor gain must be > 0, got {self.gain}")
        if self.noise_std < 0:
            raise MeasurementError("sensor noise must be >= 0")


#: Telemetry profiles for the simulated boards.  The sim3070's sensor has
#: a rail-coverage gain error and visibly more noise, as its real
#: counterpart does.
SENSOR_PROFILES = {
    "sim4090": NVMLSensorProfile(
        name="sim4090", power_update_period=0.010, power_window=0.020,
        energy_update_period=0.001, gain=1.000, noise_std=0.002),
    "sim3070": NVMLSensorProfile(
        name="sim3070", power_update_period=0.050, power_window=0.100,
        energy_update_period=0.010, gain=0.985, noise_std=0.008),
}


class NVMLSim:
    """The NVML view of one simulated GPU."""

    def __init__(self, gpu: GPU, profile: NVMLSensorProfile | None = None,
                 seed: int = 0) -> None:
        self._gpu = gpu
        if profile is None:
            profile = SENSOR_PROFILES.get(gpu.spec.name,
                                          NVMLSensorProfile(gpu.spec.name))
        self.profile = profile
        channel = zlib.crc32(f"{gpu.name}:{profile.name}".encode("utf-8"))
        self._rng = np.random.default_rng(np.random.SeedSequence(
            int(seed), spawn_key=(_NVML_TAG, channel)))

    # -- internals -------------------------------------------------------------
    def _ledger(self):
        return self._gpu.machine.ledger

    def _true_energy_until(self, t: float) -> float:
        return self._ledger().energy_between(0.0, t, component=self._gpu.name)

    def _noise(self) -> float:
        if self.profile.noise_std == 0.0:
            return 1.0
        return float(self._rng.normal(1.0, self.profile.noise_std))

    # -- the NVML API --------------------------------------------------------
    def power_usage_at(self, t: float) -> float:
        """Board power in **milli-Watts** as NVML would report at time ``t``.

        The register updates every ``power_update_period`` seconds with the
        average power over the preceding ``power_window``.
        """
        if t < 0:
            raise MeasurementError(f"cannot sample at negative time {t}")
        period = self.profile.power_update_period
        update_time = math.floor(t / period) * period
        window = self.profile.power_window
        t0 = max(0.0, update_time - window)
        if update_time <= t0:
            return 0.0
        joules = self._ledger().energy_between(t0, update_time,
                                               component=self._gpu.name)
        watts = joules / (update_time - t0) * self.profile.gain * self._noise()
        quantum = self.profile.power_quantum_w
        return max(0.0, round(watts / quantum) * quantum) * 1000.0

    def power_usage(self) -> float:
        """Board power in milli-Watts right now."""
        return self.power_usage_at(self._gpu.now)

    def total_energy_consumption_at(self, t: float) -> float:
        """Cumulative energy in **milli-Joules** as reported at time ``t``.

        The counter only reflects energy up to its last update tick and is
        quantised to the sensor's energy quantum; the systematic gain
        applies.  (The counter itself is repeatable — reading twice gives
        the same value; integration noise shows up when *differencing*
        readings, see :meth:`measure_interval`.)
        """
        if t < 0:
            raise MeasurementError(f"cannot sample at negative time {t}")
        period = self.profile.energy_update_period
        update_time = math.floor(t / period) * period
        joules = self._true_energy_until(update_time)
        observed = joules * self.profile.gain
        quantum = self.profile.energy_quantum_j
        return max(0.0, round(observed / quantum) * quantum) * 1000.0

    def total_energy_consumption(self) -> float:
        """Cumulative energy counter in milli-Joules, right now."""
        return self.total_energy_consumption_at(self._gpu.now)

    def measure_interval(self, t0: float, t1: float) -> float:
        """Joules consumed in ``[t0, t1]`` per the energy counter.

        The standard measurement recipe: difference two counter readings.
        Quantisation and update-period effects fall out exactly as they
        would for real NVML polling around a workload; the sensor's
        integration noise scales with the interval energy.
        """
        if t1 < t0:
            raise MeasurementError(f"inverted measurement window [{t0}, {t1}]")
        before = self.total_energy_consumption_at(t0)
        after = self.total_energy_consumption_at(t1)
        return max(0.0, (after - before) / 1000.0 * self._noise())

    def temperature(self) -> float:
        """Die temperature in Celsius (NVML reports integer degrees)."""
        return float(int(self._gpu.temperature))
