"""A RAPL-like measurement channel for the simulated CPU side.

Intel RAPL exposes cumulative energy through model-specific registers:
a 32-bit counter per domain (package, core/PP0, DRAM, platform/PSYS) in
units announced by ``MSR_RAPL_POWER_UNIT`` — typically ``2^-16 J ≈
15.26 µJ``.  The counter wraps silently, updates roughly every
millisecond, and covers only its domain's rails.

:class:`RAPLSim` reproduces the register semantics on top of the
ground-truth ledger; :class:`RAPLEnergyCounter` is the userspace helper
every real RAPL consumer ends up writing — difference readings, handle
wraparound.
"""

from __future__ import annotations

import math

from repro.core.errors import MeasurementError
from repro.hardware.machine import Machine

__all__ = ["RAPLSim", "RAPLEnergyCounter", "RAPL_DOMAINS"]

#: RAPL domain name -> ledger domain filter (None = every component).
RAPL_DOMAINS = {
    "package-0": "cpu",
    "dram": "dram",
    "psys": None,
}

#: The canonical energy status unit: 2^-16 Joules.
ENERGY_UNIT_J = 2.0 ** -16

#: Counter width: 32 bits of energy units.
COUNTER_WRAP = 2 ** 32


class RAPLSim:
    """MSR-style cumulative energy counters over a simulated machine."""

    def __init__(self, machine: Machine, update_period: float = 0.001,
                 energy_unit_j: float = ENERGY_UNIT_J) -> None:
        if energy_unit_j <= 0:
            raise MeasurementError("RAPL energy unit must be positive")
        self._machine = machine
        self.update_period = float(update_period)
        self.energy_unit_j = float(energy_unit_j)

    @property
    def domains(self) -> list[str]:
        """Readable RAPL domains."""
        return list(RAPL_DOMAINS)

    def read_energy_units_at(self, domain: str, t: float) -> int:
        """The raw 32-bit register value for ``domain`` at time ``t``."""
        if domain not in RAPL_DOMAINS:
            raise MeasurementError(
                f"unknown RAPL domain {domain!r}; known: {sorted(RAPL_DOMAINS)}")
        if t < 0:
            raise MeasurementError(f"cannot sample at negative time {t}")
        update_time = math.floor(t / self.update_period) * self.update_period
        ledger_domain = RAPL_DOMAINS[domain]
        joules = self._machine.ledger.energy_between(0.0, update_time,
                                                     domain=ledger_domain)
        units = int(joules / self.energy_unit_j)
        return units % COUNTER_WRAP

    def read_energy_units(self, domain: str) -> int:
        """The raw register value right now."""
        return self.read_energy_units_at(domain, self._machine.now)

    def read_energy_uj(self, domain: str) -> float:
        """The powercap-sysfs-style view: micro-Joules (still wrapping)."""
        return self.read_energy_units(domain) * self.energy_unit_j * 1e6

    @property
    def wrap_joules(self) -> float:
        """Energy span after which the counter wraps."""
        return COUNTER_WRAP * self.energy_unit_j


class RAPLEnergyCounter:
    """Userspace accumulator that survives 32-bit counter wraparound.

    Call :meth:`update` at least once per wrap period (~18 hours at 1 W,
    ~65 seconds at 1 kW with the default unit); the accumulated total in
    Joules is then exact up to quantisation.
    """

    def __init__(self, rapl: RAPLSim, domain: str) -> None:
        self._rapl = rapl
        self.domain = domain
        self._last_units = rapl.read_energy_units(domain)
        self._accumulated_units = 0

    def update(self) -> float:
        """Fold in the current register value; returns total Joules."""
        units = self._rapl.read_energy_units(self.domain)
        delta = units - self._last_units
        if delta < 0:
            delta += COUNTER_WRAP
        self._accumulated_units += delta
        self._last_units = units
        return self.joules

    @property
    def joules(self) -> float:
        """Energy accumulated since construction, in Joules."""
        return self._accumulated_units * self._rapl.energy_unit_j
