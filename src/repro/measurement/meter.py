"""Generic measurement harness: bracket a workload, report its energy.

:class:`EnergyMeter` is the "wrap the region of interest" idiom every
energy experiment uses: snapshot the channel before, run, snapshot after.
It works with any channel exposing interval measurement (NVML-sim energy
counter, RAPL counters, or the ground-truth ledger for oracle baselines)
and records enough context (timestamps, channel) for divergence testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.errors import MeasurementError
from repro.hardware.machine import Machine
from repro.measurement.nvml import NVMLSim
from repro.measurement.rapl import RAPLSim

if TYPE_CHECKING:
    from repro.core.session import EvalSpan

__all__ = ["Measurement", "EnergyMeter", "attach_measurement",
           "divergence_by_layer", "ledger_meter", "nvml_meter",
           "rapl_meter"]


@dataclass(frozen=True)
class Measurement:
    """The result of one metered run."""

    joules: float
    t_start: float
    t_end: float
    channel: str

    @property
    def duration(self) -> float:
        """Wall (simulated) seconds the run took."""
        return self.t_end - self.t_start

    @property
    def average_power(self) -> float:
        """Mean power over the run in Watts."""
        if self.duration == 0:
            return 0.0
        return self.joules / self.duration


class EnergyMeter:
    """Brackets workloads with before/after channel readings.

    ``reader`` maps a pair of timestamps to measured Joules; factories for
    the standard channels are provided below.
    """

    def __init__(self, machine: Machine, channel: str,
                 reader: Callable[[float, float], float]) -> None:
        self._machine = machine
        self.channel = channel
        self._reader = reader

    def run(self, workload: Callable[[], None],
            span: "EvalSpan | None" = None) -> Measurement:
        """Execute ``workload`` and return its measured energy.

        With ``span``, the measurement is attached to that evaluation
        span, so the trace carries predicted *and* measured Joules side
        by side (benchmark T1's divergence, per span).
        """
        t_start = self._machine.now
        workload()
        t_end = self._machine.now
        if t_end < t_start:
            raise MeasurementError("workload rewound the machine clock")
        joules = self._reader(t_start, t_end)
        measurement = Measurement(joules, t_start, t_end, self.channel)
        if span is not None:
            attach_measurement(span, joules, self.channel)
        return measurement


def attach_measurement(span: "EvalSpan", joules: float,
                       channel: str) -> None:
    """Record a measured-energy reading against an evaluation span.

    The span keeps its predicted value; ``span.divergence`` then reports
    the relative error of the prediction against this channel.
    """
    if joules < 0:
        raise MeasurementError(f"measured energy must be >= 0, got {joules}")
    span.measured_j = joules
    span.measured_channel = channel


def divergence_by_layer(roots: "Iterable[EvalSpan]"
                        ) -> dict[str, tuple[float, float]]:
    """Per-layer (predicted, measured) Joules over all measured spans.

    Only spans that carry a measurement contribute; a span's prediction
    is its inclusive value, so attach measurements at the granularity you
    want compared (typically one span per layer).
    """
    totals: dict[str, tuple[float, float]] = {}
    for root in roots:
        for span in root.walk():
            if span.measured_j is None:
                continue
            layer = span.layer or "?"
            predicted, measured = totals.get(layer, (0.0, 0.0))
            totals[layer] = (predicted + span.value_j,
                             measured + span.measured_j)
    return totals


def ledger_meter(machine: Machine, component: str | None = None) -> EnergyMeter:
    """The oracle channel: exact ground truth from the ledger."""

    def read(t0: float, t1: float) -> float:
        return machine.ledger.energy_between(t0, t1, component=component)

    label = f"ledger[{component}]" if component else "ledger"
    return EnergyMeter(machine, label, read)


def nvml_meter(machine: Machine, nvml: NVMLSim) -> EnergyMeter:
    """The NVML energy-counter channel."""
    return EnergyMeter(machine, f"nvml[{nvml.profile.name}]",
                       nvml.measure_interval)


def rapl_meter(machine: Machine, rapl: RAPLSim, domain: str) -> EnergyMeter:
    """The RAPL channel for one domain, wrap-safe."""

    def read(t0: float, t1: float) -> float:
        units0 = rapl.read_energy_units_at(domain, t0)
        units1 = rapl.read_energy_units_at(domain, t1)
        delta = units1 - units0
        if delta < 0:
            delta += 2 ** 32
        return delta * rapl.energy_unit_j

    return EnergyMeter(machine, f"rapl[{domain}]", read)
