"""Proof-of-work vs proof-of-stake consensus energy (§1's Ethereum claim).

"Ethereum recently reduced its energy consumption by an impressive 99.95%
by transitioning from proof-of-work to proof-of-stake consensus."  The
reduction is a *design-level* property an energy interface exposes before
anyone mines a block: PoW burns hash-rate proportional power across all
miners continuously; PoS runs validators that mostly idle between
attestations.

Both protocols are modelled as energy interfaces over the same
abstraction — a network securing B blocks per day — so the comparison is
an interface evaluation, not a measurement campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.contracts import energy_spec
from repro.core.errors import WorkloadError
from repro.core.interface import EnergyInterface
from repro.core.units import Energy

__all__ = ["PoWNetworkSpec", "PoSNetworkSpec", "PoWEnergyInterface",
           "PoSEnergyInterface", "merge_savings",
           "BROADCAST_JOULES", "ATTEST_JOULES", "pos_slot_impl"]

#: Static cost model for the lintable PoS slot (Joules).
BROADCAST_JOULES = 0.02
ATTEST_JOULES = 0.9


def _slot_bound(validators):
    """Worst case of a slot: one broadcast plus every attestation."""
    return BROADCAST_JOULES + ATTEST_JOULES * validators


@energy_spec(
    resources={"net": {}, "cpu": {}},
    costs={"net.broadcast": BROADCAST_JOULES, "cpu.attest": ATTEST_JOULES},
    input_bounds={"validators": (0, 2_000_000)},
    bound=_slot_bound,
)
def pos_slot_impl(res, validators):
    """One PoS slot, abstracted for ``repro-energy lint``.

    The 99.95 % claim rests on PoS energy scaling with *duties*, not
    hash rate; the linter verifies the slot's energy is the declared
    per-duty costs and nothing else.
    """
    res.net.broadcast(1)
    for _ in range(validators):
        res.cpu.attest(1)
    return 0


@dataclass(frozen=True)
class PoWNetworkSpec:
    """A proof-of-work network: difficulty pins total hash power.

    Defaults approximate pre-merge Ethereum: ~900 TH/s network hash rate
    at ~2 J per MH (GPU miners around 0.5 MH/s per Watt, all running 24/7
    whether or not they win blocks).
    """

    hash_rate_mh_per_s: float = 900e6      # network MH/s
    joules_per_mh: float = 2.0
    overhead_fraction: float = 0.10        # cooling, pools, networking

    def __post_init__(self) -> None:
        if self.hash_rate_mh_per_s <= 0 or self.joules_per_mh <= 0:
            raise WorkloadError("PoW spec needs positive rates")
        if not 0 <= self.overhead_fraction < 1:
            raise WorkloadError("overhead_fraction must be in [0, 1)")


@dataclass(frozen=True)
class PoSNetworkSpec:
    """A proof-of-stake network: validators idle between duties.

    Defaults approximate post-merge Ethereum: ~500k validator keys on
    ~16k physical nodes (beacon + execution client) drawing tens of
    Watts each.
    """

    n_nodes: int = 16000
    node_power_w: float = 60.0
    attestations_per_node_per_day: float = 225.0
    joules_per_attestation: float = 15.0   # signing + gossip burst

    def __post_init__(self) -> None:
        if self.n_nodes <= 0 or self.node_power_w <= 0:
            raise WorkloadError("PoS spec needs positive capacity")


class PoWEnergyInterface(EnergyInterface):
    """Energy interface of the proof-of-work protocol."""

    def __init__(self, spec: PoWNetworkSpec) -> None:
        super().__init__("pow_consensus")
        self.spec = spec

    def E_secure_day(self) -> Energy:
        """Energy to keep the chain secure for one day.

        PoW security is paid continuously: difficulty retargeting keeps
        the whole network hashing regardless of the block count.
        """
        seconds_per_day = 86_400.0
        mining = (self.spec.hash_rate_mh_per_s * self.spec.joules_per_mh
                  * seconds_per_day)
        return Energy(mining * (1.0 + self.spec.overhead_fraction))

    def E_per_block(self, blocks_per_day: float = 6500.0) -> Energy:
        """Average energy attributable to one block."""
        if blocks_per_day <= 0:
            raise WorkloadError("blocks_per_day must be positive")
        return self.E_secure_day() * (1.0 / blocks_per_day)


class PoSEnergyInterface(EnergyInterface):
    """Energy interface of the proof-of-stake protocol."""

    def __init__(self, spec: PoSNetworkSpec) -> None:
        super().__init__("pos_consensus")
        self.spec = spec

    def E_secure_day(self) -> Energy:
        """Energy to keep the chain secure for one day."""
        seconds_per_day = 86_400.0
        idle = self.spec.n_nodes * self.spec.node_power_w * seconds_per_day
        duties = (self.spec.n_nodes * self.spec.attestations_per_node_per_day
                  * self.spec.joules_per_attestation)
        return Energy(idle + duties)

    def E_per_block(self, blocks_per_day: float = 7200.0) -> Energy:
        """Average energy attributable to one block."""
        if blocks_per_day <= 0:
            raise WorkloadError("blocks_per_day must be positive")
        return self.E_secure_day() * (1.0 / blocks_per_day)


def merge_savings(pow_spec: PoWNetworkSpec | None = None,
                  pos_spec: PoSNetworkSpec | None = None) -> float:
    """The merge's energy reduction as a fraction (paper: 0.9995).

    Evaluating two interfaces over the same service abstraction — this is
    the kind of design-space comparison energy clarity is for.
    """
    pow_iface = PoWEnergyInterface(pow_spec if pow_spec is not None
                                   else PoWNetworkSpec())
    pos_iface = PoSEnergyInterface(pos_spec if pos_spec is not None
                                   else PoSNetworkSpec())
    before = pow_iface.E_secure_day().as_joules
    after = pos_iface.E_secure_day().as_joules
    return 1.0 - after / before
