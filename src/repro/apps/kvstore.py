"""A key-value store over flash — lumpy energy made predictable.

Flash garbage collection makes write energy *bursty*: most writes cost a
few tens of microjoules, but the one that tips the dirty threshold pays
a block-erase storm.  §3's machinery handles this exactly: the interface
declares a ``gc_triggered`` ECV, and the storage manager — who can see
the device's dirty headroom — binds its probability, turning the lumpy
behaviour into an accurate expected cost and a truthful worst case.

This is also a second, quantitative instance of "an energy interface
must account for past inputs": the GC probability *is* a summary of the
write history, exposed as a distribution instead of an impractical
time-series input.
"""

from __future__ import annotations

from repro.core.contracts import energy_spec
from repro.core.ecv import BernoulliECV
from repro.core.errors import WorkloadError
from repro.core.interface import EnergyInterface
from repro.core.stack import ResourceManager
from repro.core.units import Energy
from repro.hardware.storage import PAGE_BYTES, SSD

__all__ = ["KVStore", "KVStoreEnergyInterface", "StorageManager",
           "WRITE_PAGE_JOULES", "ERASE_BLOCK_JOULES", "kv_put_impl"]

#: Static cost model for the lintable put path (Joules).
WRITE_PAGE_JOULES = 60e-6
ERASE_BLOCK_JOULES = 2e-3


class KVStore:
    """A minimal put/get store running on a simulated SSD."""

    def __init__(self, ssd: SSD, value_bytes: int = 16 * 1024) -> None:
        if value_bytes <= 0:
            raise WorkloadError("value size must be positive")
        self.ssd = ssd
        self.value_bytes = value_bytes
        self.puts = 0
        self.gets = 0

    def put(self, key: int) -> None:
        """Write one value (plus a metadata page)."""
        self.ssd.write(self.value_bytes + PAGE_BYTES)
        self.puts += 1

    def get(self, key: int) -> None:
        """Read one value (plus a metadata page)."""
        self.ssd.read(self.value_bytes + PAGE_BYTES)
        self.gets += 1


class KVStoreEnergyInterface(EnergyInterface):
    """The store's energy interface over the SSD's spec sheet."""

    def __init__(self, ssd: SSD, value_bytes: int = 16 * 1024) -> None:
        super().__init__("kvstore")
        self.spec = ssd.spec
        self.value_bytes = value_bytes
        self.declare_ecv(BernoulliECV(
            "gc_triggered", p=0.1,
            description="this put tips the dirty threshold (write "
                        "history summary)"))

    def _pages(self) -> int:
        return -(-(self.value_bytes + PAGE_BYTES) // PAGE_BYTES)

    def E_put(self) -> Energy:
        write = self._pages() * self.spec.e_write_page
        if self.ecv("gc_triggered"):
            threshold_pages = int(self.spec.gc_dirty_threshold
                                  * self.spec.capacity_blocks
                                  * self.spec.pages_per_block)
            blocks = threshold_pages // self.spec.pages_per_block
            return Energy(write + blocks * self.spec.e_erase_block)
        return Energy(write)

    def E_get(self) -> Energy:
        return Energy(self._pages() * self.spec.e_read_page)


class StorageManager(ResourceManager):
    """The layer's manager: binds the GC probability from device state.

    ``p(gc on next put) ~= pages_per_put / dirty headroom`` once the
    device is past its first fill; before that the probability is the
    long-run average (pages written per put / pages reclaimed per GC).
    """

    def __init__(self, name: str, ssd: SSD,
                 value_bytes: int = 16 * 1024) -> None:
        super().__init__(name)
        self.ssd = ssd
        self.value_bytes = value_bytes

    def gc_probability(self) -> float:
        """The long-run chance a put triggers garbage collection."""
        pages_per_put = -(-(self.value_bytes + PAGE_BYTES) // PAGE_BYTES)
        threshold_pages = int(self.ssd.spec.gc_dirty_threshold
                              * self.ssd.total_pages)
        reclaimed = (threshold_pages // self.ssd.spec.pages_per_block
                     * self.ssd.spec.pages_per_block)
        if reclaimed <= 0:
            return 1.0
        return min(pages_per_put / reclaimed, 1.0)

    def known_bindings(self):
        return {"gc_triggered": BernoulliECV(
            "gc_triggered", p=self.gc_probability(),
            description=f"bound by {self.name} from device headroom")}


# --------------------------------------------------------------------------
# Statically-checkable implementation (``repro-energy lint``)
# --------------------------------------------------------------------------

def _kv_put_bound(value_pages):
    """Worst case of a put: every page written plus one GC erase."""
    return WRITE_PAGE_JOULES * value_pages + ERASE_BLOCK_JOULES


@energy_spec(
    resources={"ssd": {"gc_due": "bool"}},
    costs={"ssd.gc_due": 0.0,
           "ssd.write_page": WRITE_PAGE_JOULES,
           "ssd.erase_block": ERASE_BLOCK_JOULES},
    input_bounds={"value_pages": (0, 1024)},
    exposed_ecvs=("ssd.gc_due",),
    bound=_kv_put_bound,
)
def kv_put_impl(res, value_pages):
    """A put, abstracted for the symbolic executor.

    Whether the dirty threshold tips is device state the input
    abstraction cannot contain, so the branch runs on a *resource
    result* — the linter demands it be declared as an ECV (rule EB105),
    and ``exposed_ecvs`` above does exactly that, mirroring
    ``gc_triggered`` in :class:`KVStoreEnergyInterface`.
    """
    gc = res.ssd.gc_due(value_pages)
    for _ in range(value_pages):
        res.ssd.write_page(1)
    if gc:
        res.ssd.erase_block(1)
        return 1
    return 0
