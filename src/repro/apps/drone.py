"""Mission planning for a battery-powered drone (§1's battery devices).

For battery devices, energy clarity decides *feasibility*: the mission
either fits the charge or the aircraft lands in a field.  This module
pairs the battery model with a mission energy interface:

* :class:`DroneSpec` — airframe power model: hover power from weight,
  cruise power versus speed (induced + parasitic drag, so there is a
  real minimum-energy-per-meter speed), payload sensitivity, and a
  headwind ECV (weather is state the route cannot carry);
* :class:`MissionEnergyInterface` — ``E_mission(legs)``: energy of a
  multi-leg route (cruise legs + hover work at waypoints), evaluated in
  expectation or worst case over the wind;
* :class:`MissionPlanner` — feasibility checks against the battery's
  usable charge, best cruise speed selection, and maximum-range queries
  — all before takeoff, which is the whole point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.contracts import energy_spec
from repro.core.ecv import ContinuousECV
from repro.core.errors import WorkloadError
from repro.core.interface import EnergyInterface, evaluate
from repro.core.units import Energy
from repro.hardware.battery import Battery

__all__ = ["DroneSpec", "MissionLeg", "MissionEnergyInterface",
           "MissionPlanner", "FeasibilityReport",
           "CRUISE_JOULES_PER_SECOND", "HOVER_JOULES_PER_SECOND",
           "mission_leg_impl"]

GRAVITY = 9.81

#: Static cost model for the lintable mission leg (Joules per second of
#: flight, matching the default airframe near its best cruise speed).
CRUISE_JOULES_PER_SECOND = 260.0
HOVER_JOULES_PER_SECOND = 248.0


def _leg_bound(cruise_seconds, hover_seconds):
    """Worst case of a leg: every second billed at its phase's power."""
    return (CRUISE_JOULES_PER_SECOND * cruise_seconds
            + HOVER_JOULES_PER_SECOND * hover_seconds)


@energy_spec(
    resources={"motors": {}},
    costs={"motors.cruise": ("per_unit", CRUISE_JOULES_PER_SECOND),
           "motors.hover": ("per_unit", HOVER_JOULES_PER_SECOND)},
    input_bounds={"cruise_seconds": (0, 3600), "hover_seconds": (0, 3600)},
    bound=_leg_bound,
)
def mission_leg_impl(res, cruise_seconds, hover_seconds):
    """One mission leg, abstracted for ``repro-energy lint``.

    Feasibility-before-takeoff needs a *static* worst case: the linter
    proves the leg's energy is exactly the declared per-second costs
    times the commanded durations — no hidden state, no unbounded loop.
    """
    res.motors.cruise(cruise_seconds)
    res.motors.hover(hover_seconds)
    return 0


@dataclass(frozen=True)
class DroneSpec:
    """Airframe power model parameters."""

    name: str = "quadrotor"
    empty_mass_kg: float = 1.4
    hover_power_per_kg: float = 170.0   # W per kg of all-up mass
    parasitic_drag_w_per_mps3: float = 0.035  # P_drag = c * v^3
    avionics_power_w: float = 8.0

    def __post_init__(self) -> None:
        if self.empty_mass_kg <= 0 or self.hover_power_per_kg <= 0:
            raise WorkloadError(f"drone {self.name!r} needs positive mass "
                                f"and hover power")
        if self.parasitic_drag_w_per_mps3 < 0 or self.avionics_power_w < 0:
            raise WorkloadError("drag and avionics power must be >= 0")

    def hover_power(self, payload_kg: float) -> float:
        """Watts to hover with a payload."""
        if payload_kg < 0:
            raise WorkloadError("payload must be >= 0")
        mass = self.empty_mass_kg + payload_kg
        return mass * self.hover_power_per_kg + self.avionics_power_w

    def cruise_power(self, airspeed_mps: float, payload_kg: float) -> float:
        """Watts at a given airspeed.

        Induced power falls with speed (translational lift), parasitic
        drag rises with its cube — hence an interior optimum speed.
        """
        if airspeed_mps < 0:
            raise WorkloadError("airspeed must be >= 0")
        hover = self.hover_power(payload_kg)
        induced = hover / (1.0 + 0.12 * airspeed_mps)
        parasitic = self.parasitic_drag_w_per_mps3 * airspeed_mps ** 3
        return induced + parasitic + self.avionics_power_w


@dataclass(frozen=True)
class MissionLeg:
    """One leg: fly ``distance_m`` then hover ``hover_seconds``."""

    distance_m: float
    hover_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.distance_m < 0 or self.hover_seconds < 0:
            raise WorkloadError("legs need non-negative distance and hover")


class MissionEnergyInterface(EnergyInterface):
    """Energy of a mission, as a function of its abstraction.

    The input is the route abstraction (distances, hover durations,
    payload, chosen cruise speed); the headwind is an ECV bound by
    whoever has the forecast.  Positive headwind raises the airspeed
    needed for a given ground speed.
    """

    def __init__(self, drone: DroneSpec,
                 max_headwind_mps: float = 8.0) -> None:
        super().__init__(f"E_{drone.name}_mission")
        self.drone = drone
        self.declare_ecv(ContinuousECV(
            "headwind_mps", -max_headwind_mps, max_headwind_mps,
            description="average headwind along the route (forecast)"))

    def E_leg(self, distance_m: float, hover_seconds: float,
              payload_kg: float, ground_speed_mps: float) -> Energy:
        """Energy of one leg under the current wind ECV."""
        if ground_speed_mps <= 0:
            raise WorkloadError("ground speed must be positive")
        headwind = self.ecv("headwind_mps")
        airspeed = max(ground_speed_mps + headwind, 0.0)
        cruise_w = self.drone.cruise_power(airspeed, payload_kg)
        cruise_seconds = distance_m / ground_speed_mps
        hover_w = self.drone.hover_power(payload_kg)
        return Energy(cruise_w * cruise_seconds
                      + hover_w * hover_seconds)

    def E_mission(self, legs: Sequence[MissionLeg], payload_kg: float,
                  ground_speed_mps: float) -> Energy:
        """Energy of the whole route."""
        total = Energy(0.0)
        for leg in legs:
            total = total + self.E_leg(leg.distance_m, leg.hover_seconds,
                                       payload_kg, ground_speed_mps)
        return total


@dataclass(frozen=True)
class FeasibilityReport:
    """The planner's verdict on one mission."""

    feasible_expected: bool
    feasible_worst_case: bool
    expected: Energy
    worst_case: Energy
    usable: Energy

    @property
    def margin(self) -> float:
        """Usable charge remaining after the worst case, as a fraction."""
        if self.usable.as_joules == 0:
            return -1.0
        return 1.0 - self.worst_case.as_joules / self.usable.as_joules

    def __str__(self) -> str:
        verdict = ("GO" if self.feasible_worst_case
                   else "GO (fair weather only)" if self.feasible_expected
                   else "NO-GO")
        return (f"{verdict}: expected {self.expected}, worst "
                f"{self.worst_case}, usable {self.usable} "
                f"(margin {self.margin:.0%})")


class MissionPlanner:
    """Feasibility and optimisation queries over mission interfaces."""

    def __init__(self, interface: MissionEnergyInterface,
                 battery: Battery) -> None:
        self.interface = interface
        self.battery = battery

    def check(self, legs: Sequence[MissionLeg], payload_kg: float,
              ground_speed_mps: float) -> FeasibilityReport:
        """Can the mission complete? Expected and worst-case answers."""
        expected = self.interface.expected(
            "E_mission", list(legs), payload_kg, ground_speed_mps)
        worst = self.interface.worst_case(
            "E_mission", list(legs), payload_kg, ground_speed_mps)
        usable = self.battery.usable()
        return FeasibilityReport(
            feasible_expected=expected.as_joules <= usable.as_joules,
            feasible_worst_case=worst.as_joules <= usable.as_joules,
            expected=expected,
            worst_case=worst,
            usable=usable,
        )

    def best_speed(self, payload_kg: float,
                   candidates: Sequence[float] = tuple(range(4, 26, 2)),
                   headwind_mps: float = 0.0) -> float:
        """The minimum-energy-per-meter cruise speed for this payload."""
        best = None
        for speed in candidates:
            energy = evaluate(
                self.interface("E_leg", 1000.0, 0.0, payload_kg,
                               float(speed)),
                env={"headwind_mps": headwind_mps}).as_joules
            if best is None or energy < best[0]:
                best = (energy, float(speed))
        if best is None:
            raise WorkloadError("no candidate speeds supplied")
        return best[1]

    def max_range_m(self, payload_kg: float, ground_speed_mps: float,
                    worst_case: bool = True) -> float:
        """How far can we fly on the usable charge (one-way)?"""
        mode = "worst" if worst_case else "expected"
        per_km = evaluate(
            self.interface("E_leg", 1000.0, 0.0, payload_kg,
                           ground_speed_mps),
            mode=mode).as_joules
        if per_km <= 0:
            return float("inf")
        return self.battery.usable().as_joules / per_km * 1000.0
