"""Application models: the paper's motivating workloads, runnable."""

from repro.apps.consensus import (
    PoSEnergyInterface,
    PoSNetworkSpec,
    PoWEnergyInterface,
    PoWNetworkSpec,
    merge_savings,
)
from repro.apps.crypto import (
    ConstantTimeInterface,
    ConstantTimeVerifier,
    EarlyExitInterface,
    EarlyExitVerifier,
)
from repro.apps.drone import (
    DroneSpec,
    FeasibilityReport,
    MissionEnergyInterface,
    MissionLeg,
    MissionPlanner,
)
from repro.apps.kvstore import KVStore, KVStoreEnergyInterface, \
    StorageManager
from repro.apps.fuzzing import (
    CapacityPlanner,
    FuzzingCampaignModel,
    FuzzingEnergyInterface,
    PlanningAnswer,
)
from repro.apps.mlservice import (
    REQUEST_BYTES,
    RESPONSE_BYTES,
    CacheLookupInterface,
    CNNForwardInterface,
    CNNModel,
    MLServiceInterface,
    MLWebService,
    build_service_machine,
    build_service_stack,
)
from repro.apps.transcode import bimodal_transcoder, noisy_task, steady_task

__all__ = [
    "CNNModel", "MLWebService", "CacheLookupInterface", "CNNForwardInterface",
    "MLServiceInterface", "build_service_machine", "build_service_stack",
    "RESPONSE_BYTES", "REQUEST_BYTES",
    "bimodal_transcoder", "steady_task", "noisy_task",
    "FuzzingCampaignModel", "FuzzingEnergyInterface", "CapacityPlanner",
    "PlanningAnswer",
    "PoWNetworkSpec", "PoSNetworkSpec", "PoWEnergyInterface",
    "PoSEnergyInterface", "merge_savings",
    "ConstantTimeVerifier", "EarlyExitVerifier",
    "ConstantTimeInterface", "EarlyExitInterface",
    "DroneSpec", "MissionLeg", "MissionEnergyInterface", "MissionPlanner",
    "FeasibilityReport",
    "KVStore", "KVStoreEnergyInterface", "StorageManager",
]
