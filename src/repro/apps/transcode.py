"""Task models for the EAS motivating claim (§1).

"Real-time video transcoding can exhibit a bi-modal behavior, with
compute peaks during active transcoding and troughs when doing I/O."
:func:`bimodal_transcoder` builds exactly that task: a deterministic
burst/trough cycle (compute-heavy while encoding a group of pictures,
near-idle while reading/writing).  Its utilisation interface — the slice
of its energy interface a scheduler consumes — predicts each quantum's
phase perfectly, because the phase structure is a property of the
program, not of history.

:func:`steady_task` is the control: a constant load for which the EAS
EWMA is already a perfect predictor, so interface scheduling should win
nothing (benchmark M1 checks both sides of the claim).
"""

from __future__ import annotations

import numpy as np

from repro.core.contracts import energy_spec
from repro.core.errors import WorkloadError
from repro.managers.base import Task
from repro.managers.interface_scheduler import UtilizationInterface

__all__ = ["bimodal_transcoder", "steady_task", "noisy_task",
           "INGEST_JOULES", "ENCODE_FRAME_JOULES", "FLUSH_JOULES",
           "transcode_gop_impl"]

#: Static cost model for the lintable GOP path (Joules).
INGEST_JOULES = 0.004
ENCODE_FRAME_JOULES = 0.035
FLUSH_JOULES = 0.002


def _gop_bound(frames):
    """Worst case of one group of pictures, branch-free."""
    return INGEST_JOULES + ENCODE_FRAME_JOULES * frames + FLUSH_JOULES


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.ingest": INGEST_JOULES,
           "cpu.encode": ENCODE_FRAME_JOULES,
           "cpu.flush": FLUSH_JOULES},
    input_bounds={"frames": (0, 600)},
    bound=_gop_bound,
)
def transcode_gop_impl(res, frames):
    """One group of pictures, abstracted for ``repro-energy lint``.

    The bi-modal structure (I/O trough, compute burst, I/O trough) is a
    property of the program, so the whole GOP summarises statically:
    ingest + ``frames`` encodes + flush, nothing history-dependent.
    """
    res.cpu.ingest(1)
    for _ in range(frames):
        res.cpu.encode(1)
    res.cpu.flush(1)
    return 0


def bimodal_transcoder(name: str, burst_util: float = 820.0,
                       trough_util: float = 45.0,
                       burst_quanta: int = 3, trough_quanta: int = 3,
                       phase_offset: int = 0) -> Task:
    """A transcoder alternating compute bursts and I/O troughs.

    Utilisations are in EAS capacity units (1024 = the biggest core flat
    out); the defaults put bursts beyond any LITTLE core and troughs well
    within one.
    """
    if burst_quanta <= 0 or trough_quanta <= 0:
        raise WorkloadError("phase lengths must be positive")
    if burst_util < trough_util:
        raise WorkloadError("burst utilisation must be >= trough utilisation")
    period = burst_quanta + trough_quanta

    def profile(quantum_index: int) -> float:
        position = (quantum_index + phase_offset) % period
        return burst_util if position < burst_quanta else trough_util

    interface = UtilizationInterface(
        profile,
        description=f"bimodal: {burst_util:g} for {burst_quanta} quanta, "
                    f"then {trough_util:g} for {trough_quanta}")
    return Task(name=name, utilization_profile=profile,
                energy_interface=interface)


def steady_task(name: str, utilization: float = 300.0) -> Task:
    """A constant-load task (EWMA predicts it perfectly)."""
    if utilization < 0:
        raise WorkloadError("utilisation must be >= 0")

    def profile(quantum_index: int) -> float:
        return utilization

    interface = UtilizationInterface(
        profile, description=f"steady at {utilization:g}")
    return Task(name=name, utilization_profile=profile,
                energy_interface=interface)


def noisy_task(name: str, mean_util: float, std_util: float,
               seed: int = 0) -> Task:
    """A stochastic load around a mean — hard for everyone.

    The task's interface predicts the mean (that *is* what its energy
    interface can promise); the EWMA tracks roughly the same thing, so M1
    expects parity here too.
    """
    if mean_util < 0 or std_util < 0:
        raise WorkloadError("utilisation parameters must be >= 0")
    rng = np.random.default_rng(seed)
    cache: dict[int, float] = {}

    def profile(quantum_index: int) -> float:
        if quantum_index not in cache:
            cache[quantum_index] = float(
                max(rng.normal(mean_util, std_util), 0.0))
        return cache[quantum_index]

    interface = UtilizationInterface(
        lambda quantum_index: mean_util,
        description=f"noisy around {mean_util:g} (std {std_util:g})")
    return Task(name=name, utilization_profile=profile,
                energy_interface=interface)
