"""Fig. 1's ML-model web service, end to end.

A CNN inference service with a two-level request cache, exactly the
paper's example: a request either hits the request cache (locally — cheap
DRAM read — or on a peer node — NIC round-trip) or pays for a CNN forward
pass whose cost depends on the image's *non-zero* pixels (the
zero-skipping accelerator the paper cites as an energy-relevant model
property).

Three artefacts live here:

* :class:`MLWebService` — the implementation, running on simulated
  hardware (GPU + DRAM + NIC + CPU) with an
  :class:`~repro.managers.cachemgr.LRUCacheManager` as the cache's
  resource manager;
* :class:`CacheLookupInterface` / :class:`CNNForwardInterface` /
  :class:`MLServiceInterface` — the energy interfaces, shaped exactly
  like Fig. 1 (same ECVs, same structure);
* :func:`build_service_stack` — the Fig. 2 system stack wiring the
  interfaces through their resource managers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sideeffects import RADIO_MODEL
from repro.core.composition import BoundInterface
from repro.core.contracts import energy_spec
from repro.core.ecv import BernoulliECV
from repro.core.errors import WorkloadError
from repro.core.interface import EnergyInterface
from repro.core.stack import Layer, Resource, ResourceManager, SystemStack
from repro.core.units import Energy
from repro.hardware.cpu import Core, Package
from repro.hardware.gpu import GPU, GPUSpec, KernelProfile
from repro.hardware.machine import Machine
from repro.hardware.memory import DRAM, DRAMSpec
from repro.hardware.nic import NIC, NICSpec
from repro.hardware.profiles import BIG_CORE, SIM4090
from repro.managers.cachemgr import LRUCacheManager
from repro.measurement.calibration import CalibratedModel
from repro.workloads.traces import ImageRequest

__all__ = [
    "CNNModel",
    "MLWebService",
    "CacheLookupInterface",
    "CNNForwardInterface",
    "MLServiceInterface",
    "build_service_machine",
    "build_service_stack",
    "RESPONSE_BYTES",
    "REQUEST_BYTES",
    "handle_impl",
]

#: Fig. 1's max_response_len, in bytes.
RESPONSE_BYTES = 1024
REQUEST_BYTES = 256

#: CPU work (capacity-seconds) for request parsing/serialisation.
CPU_WORK_PER_REQUEST = 0.08

#: Static cost model for the lintable request path (Joules).
LOOKUP_JOULES = 12e-6
STORE_JOULES = 18e-6
FORWARD_JOULES_PER_PIXEL = 3e-9
SEND_JOULES = 150e-6
WAKE_JOULES = 8e-3
SLEEP_JOULES = 1e-6


@dataclass(frozen=True)
class CNNModel:
    """Shape of the object-detection CNN (Fig. 1's E_cnn_forward).

    8 convolution stages, 8 ReLUs and 16 MLP blocks over an embedding of
    256, matching the figure.  Convolution cost scales with *non-zero*
    pixels.
    """

    n_conv: int = 8
    n_relu: int = 8
    n_mlp: int = 16
    n_embedding: int = 256
    conv_channels: int = 32
    conv_kernel: int = 9  # 3x3

    def conv_kernel_profile(self, active_pixels: int) -> KernelProfile:
        """One convolution stage over ``active_pixels`` non-zero pixels."""
        macs = float(self.conv_kernel * self.conv_channels
                     * max(active_pixels, 0))
        bytes_moved = max(active_pixels, 0) * 2.0 * self.conv_channels
        return KernelProfile(
            name="conv2d",
            instructions=macs / 32 * 1.3,
            l1_wavefronts=bytes_moved / 128,
            l2_sectors=bytes_moved / 32,
            vram_sectors=bytes_moved / 32 * 0.5,
            row_miss_fraction=0.05,
        )

    def relu_kernel_profile(self) -> KernelProfile:
        """One ReLU over the embedding."""
        bytes_moved = self.n_embedding * 2.0
        return KernelProfile(
            name="relu",
            instructions=self.n_embedding / 32 * 2,
            l1_wavefronts=bytes_moved / 128 * 2,
            l2_sectors=bytes_moved / 32,
            vram_sectors=0.0,
            row_miss_fraction=0.0,
        )

    def mlp_kernel_profile(self) -> KernelProfile:
        """One MLP block over the embedding."""
        macs = float(self.n_embedding * self.n_embedding)
        weight_bytes = macs * 2.0
        return KernelProfile(
            name="mlp",
            instructions=macs / 32 * 1.3,
            l1_wavefronts=weight_bytes / 128,
            l2_sectors=weight_bytes / 32,
            vram_sectors=weight_bytes / 32,
            row_miss_fraction=0.045,
        )

    def forward_kernels(self, image_pixels: int,
                        zero_pixels: int) -> list[KernelProfile]:
        """The full forward pass for one image."""
        active = max(image_pixels - zero_pixels, 0)
        kernels = [self.conv_kernel_profile(active)
                   for _ in range(self.n_conv)]
        kernels.extend(self.relu_kernel_profile() for _ in range(self.n_relu))
        kernels.extend(self.mlp_kernel_profile() for _ in range(self.n_mlp))
        return kernels


def build_service_machine(gpu_spec: GPUSpec = SIM4090,
                          n_cores: int = 4) -> Machine:
    """The service node: CPU package, DRAM, NIC and a GPU."""
    machine = Machine("mlservice-node")
    package = machine.add(Package("pkg0", static_active_w=12.0,
                                  static_idle_w=3.0))
    for index in range(n_cores):
        machine.add(Core(f"cpu{index}", BIG_CORE, package))
    machine.add(DRAM("dram0", DRAMSpec(p_refresh_w=2.0)))
    machine.add(NIC("nic0", NICSpec(name="dc-nic", e_per_byte_tx=2e-9,
                                    e_per_byte_rx=1.5e-9, e_wake=0.0,
                                    wake_latency=0.0, p_idle_w=3.0,
                                    p_off_w=0.5, bandwidth_bytes=1.25e9)))
    machine.add(GPU("gpu0", gpu_spec))
    return machine


class MLWebService:
    """The running implementation of Fig. 1's service."""

    def __init__(self, machine: Machine, cnn: CNNModel | None = None,
                 local_cache_entries: int = 200,
                 cluster_cache_entries: int = 1200) -> None:
        self.machine = machine
        self.cnn = cnn if cnn is not None else CNNModel()
        self.local_cache = LRUCacheManager("redis-local",
                                           capacity=local_cache_entries,
                                           ecv_name="local_cache_hit")
        self.cluster_cache = LRUCacheManager("redis-cluster",
                                             capacity=cluster_cache_entries,
                                             ecv_name="request_hit")
        self._gpu: GPU = machine.component("gpu0")
        self._dram: DRAM = machine.component("dram0")
        self._nic: NIC = machine.component("nic0")
        self._cpu: Core = machine.component("cpu0")
        self.requests_served = 0
        self._local_hits_given_request_hit = 0

    # -- request path ----------------------------------------------------------
    def handle(self, request: ImageRequest) -> str:
        """Serve one request on the simulated hardware.

        Returns which path served it: ``"local"``, ``"remote"`` or
        ``"infer"`` (useful for tests and divergence analysis).
        """
        self.requests_served += 1
        self._cpu.run(CPU_WORK_PER_REQUEST, tag="request-handling")
        # NOTE: look up the cluster cache first so its hit statistic means
        # "the response existed somewhere" (Fig. 1's request_hit), then the
        # local cache for placement.
        in_cluster = self.cluster_cache.lookup(request.object_id)
        in_local = self.local_cache.lookup(request.object_id)
        if in_cluster and in_local:
            self._local_hits_given_request_hit += 1
            self._dram.access(bytes_read=RESPONSE_BYTES + 256,
                              tag="cache-local")
            return "local"
        if in_cluster:
            self._nic.send(REQUEST_BYTES)
            self._nic.receive(RESPONSE_BYTES)
            self._dram.access(bytes_written=RESPONSE_BYTES,
                              tag="cache-fill")
            return "remote"
        for kernel in self.cnn.forward_kernels(request.image_pixels,
                                               request.zero_pixels):
            self._gpu.launch(kernel, tag="cnn-forward")
        self._dram.access(bytes_written=RESPONSE_BYTES, tag="cache-fill")
        self._nic.send(RESPONSE_BYTES)  # publish to the cluster cache
        return "infer"

    def degraded_variant(self, request: ImageRequest,
                         factor: int = 4) -> ImageRequest | None:
        """A cheaper variant of ``request``: the image downsampled by
        ``factor``, sparsity preserved.  Serving systems fall back to it
        when the full-resolution pass does not fit the energy budget.
        Returns None when the image is already too small to shrink.
        """
        if factor <= 1:
            raise WorkloadError(f"degrade factor must be > 1, got {factor}")
        pixels = request.image_pixels // factor
        if pixels < 1024:
            return None
        zeros = min(request.zero_pixels // factor, pixels)
        return ImageRequest(object_id=request.object_id,
                            image_pixels=pixels, zero_pixels=zeros)

    # -- manager knowledge ----------------------------------------------------
    def observed_bindings(self) -> dict:
        """ECV bindings the service's managers can report from observation.

        ``request_hit`` is the cluster-wide hit rate; ``local_cache_hit``
        is the probability the hit was *local given it hit at all* — the
        conditional the Fig. 1 interface branches on.
        """
        bindings: dict = {}
        cluster_hits = self.cluster_cache.hits
        if self.cluster_cache.observations >= 30:
            bindings["request_hit"] = BernoulliECV(
                "request_hit", p=self.cluster_cache.hit_rate,
                description="observed cluster cache hit rate")
        if cluster_hits >= 30:
            bindings["local_cache_hit"] = BernoulliECV(
                "local_cache_hit",
                p=self._local_hits_given_request_hit / cluster_hits,
                description="observed local-hit rate among cache hits")
        return bindings


class CacheLookupInterface(EnergyInterface):
    """Fig. 1's ``E_cache_lookup``: local hit vs remote fetch.

    Costs are grounded in the hardware interfaces below it: a local hit
    reads DRAM; a remote hit pays a NIC round-trip.  ``local_cache_hit``
    is the ECV the cache manager binds from observation.  The ``T_*``
    methods predict durations, which the service-level interface needs to
    charge node static power.
    """

    def __init__(self, dram_spec: DRAMSpec, nic_spec: NICSpec) -> None:
        super().__init__("redis_cache")
        self.dram_spec = dram_spec
        self.nic_spec = nic_spec
        self.declare_ecv(BernoulliECV(
            "local_cache_hit", p=0.5,
            description="cache hit in current node"))

    def E_lookup(self, response_len: int) -> Energy:
        lines = -(-(response_len + 256) // 64)
        if self.ecv("local_cache_hit"):
            return Energy(lines * self.dram_spec.e_read_line)
        joules = (REQUEST_BYTES * self.nic_spec.e_per_byte_tx
                  + response_len * self.nic_spec.e_per_byte_rx
                  + (-(-response_len // 64)) * self.dram_spec.e_write_line)
        return Energy(joules)

    def E_store(self, response_len: int) -> Energy:
        """Writing a fresh response into the cache + publishing it."""
        lines = -(-response_len // 64)
        return Energy(lines * self.dram_spec.e_write_line
                      + response_len * self.nic_spec.e_per_byte_tx)

    def T_lookup(self, response_len: int) -> float:
        """Seconds a lookup occupies the node."""
        if self.ecv("local_cache_hit"):
            return (response_len + 256) / self.dram_spec.bandwidth_bytes
        return ((REQUEST_BYTES + response_len) / self.nic_spec.bandwidth_bytes
                + response_len / self.dram_spec.bandwidth_bytes)

    def T_store(self, response_len: int) -> float:
        """Seconds a store + publish occupies the node."""
        return (response_len / self.dram_spec.bandwidth_bytes
                + response_len / self.nic_spec.bandwidth_bytes)


class CNNForwardInterface(EnergyInterface):
    """Fig. 1's ``E_cnn_forward``: counts x calibrated unit energies.

    ``E_forward`` is *dynamic-only* — the service-level interface charges
    the node's static power (GPU included) over the request's predicted
    duration, so per-kernel static is deliberately excluded here to avoid
    double counting.
    """

    def __init__(self, cnn: CNNModel, calibrated: CalibratedModel,
                 rates: GPUSpec) -> None:
        super().__init__("cnn_model")
        self.cnn = cnn
        self.calibrated = calibrated
        self.rates = rates

    def _kernel_duration(self, kernel: KernelProfile) -> float:
        return max(
            kernel.instructions / self.rates.instr_rate,
            kernel.l1_wavefronts / self.rates.l1_rate,
            kernel.l2_sectors / self.rates.l2_rate,
            kernel.vram_sectors / self.rates.vram_rate,
        ) + self.rates.kernel_launch_latency

    def _kernel_cost(self, kernel: KernelProfile) -> float:
        return self.calibrated.predict_joules({
            "instructions": kernel.instructions,
            "l1_wavefronts": kernel.l1_wavefronts,
            "l2_sectors": kernel.l2_sectors,
            "vram_sectors": kernel.vram_sectors,
            "kernel_launches": 1.0,
            "busy_seconds": 0.0,
        })

    def E_forward(self, image_pixels: int, zero_pixels: int) -> Energy:
        total = sum(self._kernel_cost(kernel)
                    for kernel in self.cnn.forward_kernels(image_pixels,
                                                           zero_pixels))
        return Energy(total)

    def T_forward(self, image_pixels: int, zero_pixels: int) -> float:
        """Seconds the forward pass occupies the GPU."""
        return sum(self._kernel_duration(kernel)
                   for kernel in self.cnn.forward_kernels(image_pixels,
                                                          zero_pixels))


class MLServiceInterface(EnergyInterface):
    """Fig. 1's top-level ``E_ml_webservice_handle``.

    Composes the cache and CNN interfaces and charges the node's static
    power over each request's predicted duration — a request occupies the
    whole node (GPU idle power, package, DRAM refresh, NIC idle) while it
    is being served, and that share belongs in its energy.
    """

    def __init__(self, cache: EnergyInterface, cnn: EnergyInterface,
                 node_static_power_w: float = 0.0,
                 cpu_seconds_per_request: float = 0.0,
                 cpu_joules_per_request: float = 0.0) -> None:
        super().__init__("ml_webservice")
        self.cache = cache
        self.cnn = cnn
        self.node_static_power_w = node_static_power_w
        self.cpu_seconds_per_request = cpu_seconds_per_request
        self.cpu_joules_per_request = cpu_joules_per_request
        self.declare_ecv(BernoulliECV(
            "request_hit", p=0.5,
            description="request found in cache (any node)"))

    def E_handle(self, image_pixels: int, zero_pixels: int) -> Energy:
        max_response_len = RESPONSE_BYTES
        overhead = Energy(self.cpu_joules_per_request)
        if self.ecv("request_hit"):
            duration = (self.cpu_seconds_per_request
                        + self.cache.T_lookup(max_response_len))
            return (overhead
                    + self.cache.E_lookup(max_response_len)
                    + Energy(self.node_static_power_w * duration))
        duration = (self.cpu_seconds_per_request
                    + self.cnn.T_forward(image_pixels, zero_pixels)
                    + self.cache.T_store(max_response_len))
        return (overhead
                + self.cnn.E_forward(image_pixels, zero_pixels)
                + self.cache.E_store(max_response_len)
                + Energy(self.node_static_power_w * duration))

    def E_idle(self, seconds: float) -> Energy:
        """§3's idle-state input: the node burns static power between
        requests whether or not traffic arrives."""
        return Energy(self.node_static_power_w * seconds)

    def T_handle(self, image_pixels: int, zero_pixels: int) -> float:
        """Predicted wall seconds to serve a request."""
        max_response_len = RESPONSE_BYTES
        if self.ecv("request_hit"):
            return (self.cpu_seconds_per_request
                    + self.cache.T_lookup(max_response_len))
        return (self.cpu_seconds_per_request
                + self.cnn.T_forward(image_pixels, zero_pixels)
                + self.cache.T_store(max_response_len))


# --------------------------------------------------------------------------
# Statically-checkable implementation (``repro-energy lint``)
# --------------------------------------------------------------------------

def _handle_bound(image_pixels, zero_pixels):
    """Worst case of a request: the cache-miss path, radio wake included."""
    return (LOOKUP_JOULES + FORWARD_JOULES_PER_PIXEL * image_pixels
            + STORE_JOULES + WAKE_JOULES + SEND_JOULES + SLEEP_JOULES)


@energy_spec(
    resources={"cache": {"lookup": "bool"}, "gpu": {}, "nic": {}},
    costs={"cache.lookup": LOOKUP_JOULES,
           "cache.store": STORE_JOULES,
           "gpu.forward": ("per_unit", FORWARD_JOULES_PER_PIXEL),
           "nic.send": SEND_JOULES,
           "nic.wake": WAKE_JOULES,
           "nic.sleep": SLEEP_JOULES},
    input_bounds={"image_pixels": (0.0, 1_000_000.0),
                  "zero_pixels": (0.0, 1_000_000.0)},
    exposed_ecvs=("cache.lookup",),
    state_models=(RADIO_MODEL,),
    bound=_handle_bound,
)
def handle_impl(res, image_pixels, zero_pixels):
    """Fig. 1's request path, abstracted for the symbolic executor.

    The cache-hit outcome is a resource result exposed as an ECV (it is
    Fig. 1's ``request_hit``); the NIC is put back to sleep on *every*
    return path, which is exactly what rule EB103 checks — drop either
    ``res.nic.sleep(0)`` and the radio is left on for some callers only.
    """
    hit = res.cache.lookup(image_pixels)
    if hit:
        res.nic.send(4096)
        res.nic.sleep(0)
        return 0
    res.gpu.forward(image_pixels)
    res.cache.store(image_pixels)
    res.nic.send(4096)
    res.nic.sleep(0)
    return 1


def build_service_stack(service: MLWebService,
                        calibrated: CalibratedModel) -> SystemStack:
    """Wire the Fig. 2 stack for the service.

    hardware layer (GPU/DRAM/NIC interfaces) → OS layer (systemd exporting
    the cache interface with manager-observed ECV bindings) → runtime
    layer (the service interface with both cache ECVs bound).  The node's
    static power and the CPU cost per request are *derived from the
    hardware layer's interfaces*, not measured.
    """
    machine = service.machine
    dram_spec = machine.component("dram0").spec
    nic_spec = machine.component("nic0").spec
    gpu_spec = machine.component("gpu0").spec
    package = machine.component("pkg0")
    cpu = machine.component("cpu0")

    cache_iface = CacheLookupInterface(dram_spec, nic_spec)
    cnn_iface = CNNForwardInterface(service.cnn, calibrated, gpu_spec)

    # Node static power: calibrated GPU idle + package retention + DRAM
    # refresh + NIC idle.
    node_static_w = (calibrated.static_power_w
                     + package.static_idle_w
                     + dram_spec.p_refresh_w
                     + nic_spec.p_idle_w)
    # CPU handling cost from the core's OPP table (the hardware interface):
    # request work runs at the current (lowest) OPP.
    opp = cpu.opp
    cpu_seconds = CPU_WORK_PER_REQUEST / opp.capacity
    cpu_joules = ((opp.power_active_w - opp.power_idle_w) * cpu_seconds
                  + (package.static_active_w - package.static_idle_w)
                  * cpu_seconds)

    hardware = Layer("hardware")
    hw_manager = hardware.add_manager(ResourceManager("driver"))
    hw_manager.register(Resource("cnn_model", cnn_iface,
                                 description="accelerator driver interface"))

    os_layer = Layer("os")
    systemd = os_layer.add_manager(service.local_cache)
    systemd.register(Resource("redis_cache", cache_iface,
                              functional=service.local_cache,
                              description="request cache under systemd"))

    runtime = Layer("runtime")
    python_rt = runtime.add_manager(service.cluster_cache)
    service_iface = MLServiceInterface(
        cache=BoundInterface(cache_iface, service.observed_bindings()),
        cnn=cnn_iface,
        node_static_power_w=node_static_w,
        cpu_seconds_per_request=cpu_seconds,
        cpu_joules_per_request=cpu_joules,
    )
    python_rt.register(Resource("ml_webservice", service_iface,
                                functional=service,
                                description="Django app + PyTorch model"))

    return SystemStack([hardware, os_layer, runtime])
