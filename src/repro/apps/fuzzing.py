"""ClusterFuzz-style capacity planning from energy interfaces (§1).

The paper's motivating questions for an infrastructure engineer running a
fuzzing cluster:

1. *What is the optimal number of machines to deploy to minimize energy
   consumption while achieving 95 % testing coverage?*
2. *How much additional energy is required to increase coverage from 90 %
   to 95 % using the same number of machines?*

Answering them today means deploy-measure-revise loops; with energy
interfaces they fall out of evaluating a program.  This module provides:

* :class:`FuzzingCampaignModel` — the campaign's behaviour: coverage
  saturates as ``C(executions) = c_max * (1 - (1 + x/s)^-beta)`` (a
  heavy-tailed saturation law: each new unit of coverage needs
  geometrically more executions, as fuzzing practice shows), with
  machines contributing executions at a fixed rate but suffering a
  coordination overhead (deduplication, corpus sync) that grows with the
  fleet;
* :class:`FuzzingEnergyInterface` — the campaign's energy interface:
  energy to reach a target coverage with ``n`` machines, derived from the
  machine-level interfaces (node power at fuzzing load);
* :class:`CapacityPlanner` — answers the two questions *before deploying
  anything*, exactly the §1 pitch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.contracts import energy_spec
from repro.core.errors import WorkloadError
from repro.core.interface import EnergyInterface
from repro.core.units import Energy

__all__ = ["FuzzingCampaignModel", "FuzzingEnergyInterface",
           "CapacityPlanner", "PlanningAnswer",
           "SETUP_JOULES", "EXECUTION_JOULES", "campaign_impl"]

#: Static cost model for the lintable campaign path (Joules).
SETUP_JOULES = 0.5
EXECUTION_JOULES = 85e-6


def _campaign_bound(executions):
    """Worst case of a campaign: setup plus every execution."""
    return SETUP_JOULES + EXECUTION_JOULES * executions


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.setup": SETUP_JOULES, "cpu.execute": EXECUTION_JOULES},
    input_bounds={"executions": (0, 1e10)},
    bound=_campaign_bound,
)
def campaign_impl(res, executions):
    """One fuzzing campaign, abstracted for ``repro-energy lint``.

    The §1 capacity-planning questions need the campaign's energy as a
    checked linear law in the execution count; the linter verifies the
    loop summarises to exactly that against the declared bound.
    """
    res.cpu.setup(1)
    for _ in range(executions):
        res.cpu.execute(1)
    return 0


@dataclass(frozen=True)
class FuzzingCampaignModel:
    """How coverage accrues for a given fuzzing campaign."""

    max_coverage: float = 1.0            # asymptotic coverage fraction
    saturation_executions: float = 1e9   # the "s" scale parameter
    beta: float = 0.55                   # tail exponent (<1 = heavy tail)
    executions_per_machine_second: float = 40_000.0
    coordination_overhead: float = 0.012  # per-extra-machine coordination cost

    def __post_init__(self) -> None:
        if not 0 < self.max_coverage <= 1:
            raise WorkloadError("max_coverage must be in (0, 1]")
        if self.saturation_executions <= 0 or self.beta <= 0:
            raise WorkloadError("saturation parameters must be positive")
        if not 0 <= self.coordination_overhead < 1:
            raise WorkloadError("coordination_overhead must be in [0, 1)")

    # -- the coverage law --------------------------------------------------
    def coverage(self, executions: float) -> float:
        """Coverage fraction after ``executions`` total fuzz executions."""
        if executions < 0:
            raise WorkloadError("executions must be >= 0")
        ratio = 1.0 + executions / self.saturation_executions
        return self.max_coverage * (1.0 - ratio ** (-self.beta))

    def executions_for(self, coverage: float) -> float:
        """Executions needed to reach ``coverage`` (inverse of the law)."""
        if not 0 <= coverage < self.max_coverage:
            raise WorkloadError(
                f"coverage {coverage} is unreachable (max "
                f"{self.max_coverage})")
        remaining = 1.0 - coverage / self.max_coverage
        ratio = remaining ** (-1.0 / self.beta)
        return (ratio - 1.0) * self.saturation_executions

    # -- fleet behaviour ------------------------------------------------------
    def fleet_rate(self, n_machines: int) -> float:
        """Aggregate executions/second of ``n_machines`` (with overhead).

        Efficiency decays hyperbolically with fleet size — deduplication,
        corpus synchronisation and scheduling contention grow with the
        fleet, so doubling machines never doubles throughput.
        """
        if n_machines <= 0:
            raise WorkloadError("n_machines must be positive")
        efficiency = 1.0 / (1.0 + self.coordination_overhead
                            * (n_machines - 1))
        return n_machines * self.executions_per_machine_second * efficiency

    def time_to_coverage(self, coverage: float, n_machines: int) -> float:
        """Campaign seconds to reach ``coverage`` with ``n_machines``."""
        return self.executions_for(coverage) / self.fleet_rate(n_machines)


class FuzzingEnergyInterface(EnergyInterface):
    """The campaign's energy interface.

    ``machine_fuzzing_power_w`` comes from the node's energy interface
    evaluated at the fuzzing load (all cores saturated);
    ``machine_idle_power_w`` covers machines past the campaign-useful
    point.  Both are *inputs from the layer below*, not measurements of a
    deployed fleet.
    """

    def __init__(self, campaign: FuzzingCampaignModel,
                 machine_fuzzing_power_w: float = 210.0,
                 infra_power_w: float = 2500.0) -> None:
        super().__init__("fuzzing_campaign")
        if machine_fuzzing_power_w <= 0:
            raise WorkloadError("machine power must be positive")
        if infra_power_w < 0:
            raise WorkloadError("infrastructure power must be >= 0")
        self.campaign = campaign
        self.machine_fuzzing_power_w = machine_fuzzing_power_w
        self.infra_power_w = infra_power_w

    def E_campaign(self, coverage: float, n_machines: int) -> Energy:
        """Energy to reach ``coverage`` with ``n_machines`` machines.

        Shared infrastructure (dedup servers, corpus storage, dashboards)
        draws power for the whole campaign regardless of fleet size — the
        term that makes small fleets *not* automatically energy-optimal:
        a longer campaign keeps the infrastructure burning.
        """
        duration = self.campaign.time_to_coverage(coverage, n_machines)
        fleet_power = n_machines * self.machine_fuzzing_power_w
        return Energy((fleet_power + self.infra_power_w) * duration)

    def E_marginal(self, coverage_from: float, coverage_to: float,
                   n_machines: int) -> Energy:
        """Extra energy to push coverage from one level to another (Q2)."""
        if coverage_to < coverage_from:
            raise WorkloadError("coverage_to must be >= coverage_from")
        return (self.E_campaign(coverage_to, n_machines)
                - self.E_campaign(coverage_from, n_machines))


@dataclass(frozen=True)
class PlanningAnswer:
    """The planner's answer to §1's question 1."""

    target_coverage: float
    optimal_machines: int
    energy: Energy
    campaign_seconds: float
    energy_by_fleet_size: dict[int, float]


class CapacityPlanner:
    """Answers the §1 questions by evaluating interfaces, not deploying."""

    def __init__(self, interface: FuzzingEnergyInterface,
                 max_machines: int = 200,
                 deadline_seconds: float | None = None) -> None:
        if max_machines <= 0:
            raise WorkloadError("max_machines must be positive")
        self.interface = interface
        self.max_machines = max_machines
        self.deadline_seconds = deadline_seconds

    def optimal_fleet(self, coverage: float) -> PlanningAnswer:
        """Question 1: the energy-minimal fleet size for a coverage target.

        With coordination overhead, more machines waste executions; with a
        deadline, too few machines are infeasible.  The planner sweeps the
        interface over fleet sizes — a few thousand evaluations of a
        little program instead of a few thousand deployments.
        """
        energies: dict[int, float] = {}
        best: tuple[float, int] | None = None
        for n_machines in range(1, self.max_machines + 1):
            duration = self.interface.campaign.time_to_coverage(coverage,
                                                                n_machines)
            if (self.deadline_seconds is not None
                    and duration > self.deadline_seconds):
                continue
            joules = self.interface.E_campaign(coverage,
                                               n_machines).as_joules
            energies[n_machines] = joules
            if best is None or joules < best[0]:
                best = (joules, n_machines)
        if best is None:
            raise WorkloadError(
                f"no fleet size up to {self.max_machines} meets the deadline")
        optimal = best[1]
        return PlanningAnswer(
            target_coverage=coverage,
            optimal_machines=optimal,
            energy=Energy(best[0]),
            campaign_seconds=self.interface.campaign.time_to_coverage(
                coverage, optimal),
            energy_by_fleet_size=energies,
        )

    def marginal_coverage_energy(self, coverage_from: float,
                                 coverage_to: float,
                                 n_machines: int) -> Energy:
        """Question 2: energy to go from one coverage to another."""
        return self.interface.E_marginal(coverage_from, coverage_to,
                                         n_machines)

    def coverage_cost_curve(self, n_machines: int,
                            coverages: list[float]) -> dict[float, float]:
        """Joules to reach each coverage level (for reporting)."""
        return {coverage: self.interface.E_campaign(coverage,
                                                    n_machines).as_joules
                for coverage in coverages}
