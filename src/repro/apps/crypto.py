"""Constant-energy crypto modules (§4.1's side-channel requirement).

"There might be situations in which additional constraints would need to
be expressed, such as constant-energy execution for crypto code, to
explicitly disallow energy side-channels — a mere upper bound is not
sufficient for this."

Two MAC-verification implementations over the simulated CPU illustrate
the point:

* :class:`ConstantTimeVerifier` — compares every byte regardless of
  mismatches (the correct construction);
* :class:`EarlyExitVerifier` — returns at the first mismatching byte
  (the classic bug): its *energy* now depends on how many prefix bytes
  of the attacker's guess are correct — a measurable side channel.

Both carry energy interfaces; the early-exit one's interface honestly
exposes the secret-dependent ECV, which is exactly what lets the
:class:`~repro.core.contracts.ConstantEnergyContract` reject it at
design time, before any silicon leaks anything.
"""

from __future__ import annotations

from repro.core.contracts import energy_spec
from repro.core.ecv import UniformIntECV
from repro.core.errors import WorkloadError
from repro.core.interface import EnergyInterface
from repro.core.units import Energy
from repro.hardware.cpu import Core

__all__ = ["ConstantTimeVerifier", "EarlyExitVerifier",
           "ConstantTimeInterface", "EarlyExitInterface",
           "WORK_PER_BYTE", "COMPARE_JOULES", "ct_verify_impl"]

#: CPU work (capacity-seconds) to compare one byte of MAC.
WORK_PER_BYTE = 0.002

#: Worst-case Joules per byte comparison — the static cost model the
#: linter resolves ``res.cpu.compare`` against (rule EB101/EB104).
COMPARE_JOULES = 0.0066


class ConstantTimeVerifier:
    """Constant-time MAC comparison running on a simulated core."""

    def __init__(self, core: Core, mac_bytes: int = 32) -> None:
        if mac_bytes <= 0:
            raise WorkloadError("mac_bytes must be positive")
        self.core = core
        self.mac_bytes = mac_bytes

    def verify(self, guess: bytes, secret: bytes) -> bool:
        """Compare all bytes; accumulate the difference bitwise."""
        if len(guess) != self.mac_bytes or len(secret) != self.mac_bytes:
            raise WorkloadError(f"MACs must be {self.mac_bytes} bytes")
        difference = 0
        for guess_byte, secret_byte in zip(guess, secret):
            difference |= guess_byte ^ secret_byte
            self.core.run(WORK_PER_BYTE, tag="ct-compare")
        return difference == 0


class EarlyExitVerifier:
    """The buggy version: bails at the first mismatch."""

    def __init__(self, core: Core, mac_bytes: int = 32) -> None:
        if mac_bytes <= 0:
            raise WorkloadError("mac_bytes must be positive")
        self.core = core
        self.mac_bytes = mac_bytes

    def verify(self, guess: bytes, secret: bytes) -> bool:
        if len(guess) != self.mac_bytes or len(secret) != self.mac_bytes:
            raise WorkloadError(f"MACs must be {self.mac_bytes} bytes")
        for guess_byte, secret_byte in zip(guess, secret):
            self.core.run(WORK_PER_BYTE, tag="ee-compare")
            if guess_byte != secret_byte:
                return False
        return True


class ConstantTimeInterface(EnergyInterface):
    """Interface of the constant-time verifier: input-independent."""

    def __init__(self, joules_per_byte: float, mac_bytes: int = 32) -> None:
        super().__init__("ct_verifier")
        self.joules_per_byte = joules_per_byte
        self.mac_bytes = mac_bytes

    def E_verify(self) -> Energy:
        return Energy(self.joules_per_byte * self.mac_bytes)


class EarlyExitInterface(EnergyInterface):
    """Interface of the early-exit verifier.

    The number of compared bytes is state the *input abstraction* cannot
    contain — it depends on the secret — so it surfaces as an ECV.  Its
    mere presence in the interface is the design-time red flag; the
    constant-energy contract turns the flag into a hard failure.
    """

    def __init__(self, joules_per_byte: float, mac_bytes: int = 32) -> None:
        super().__init__("ee_verifier")
        self.joules_per_byte = joules_per_byte
        self.mac_bytes = mac_bytes
        self.declare_ecv(UniformIntECV(
            "matching_prefix", 0, mac_bytes - 1,
            description="bytes of the guess matching the SECRET"))

    def E_verify(self) -> Energy:
        compared = min(self.ecv("matching_prefix") + 1, self.mac_bytes)
        return Energy(self.joules_per_byte * compared)


# --------------------------------------------------------------------------
# Statically-checkable implementation (``repro-energy lint``)
# --------------------------------------------------------------------------

def _ct_verify_bound(mac_bytes, matching_prefix):
    """Worst case promised by the handwritten interface (branch-free)."""
    return COMPARE_JOULES * mac_bytes


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.compare": COMPARE_JOULES},
    input_bounds={"mac_bytes": (0, 64), "matching_prefix": (0, 64)},
    secret_params=("matching_prefix",),
    constant_energy=True,
    bound=_ct_verify_bound,
)
def ct_verify_impl(res, mac_bytes, matching_prefix):
    """Constant-time verify, abstracted for the symbolic executor.

    ``matching_prefix`` — how much of the guess matches the SECRET — is
    a parameter of the abstraction precisely so the linter can *prove*
    the energy never depends on it (rule EB102): every byte is compared
    no matter what, so neither branching nor trip counts mention it.
    """
    for _ in range(mac_bytes):
        res.cpu.compare(1)
    return 0
