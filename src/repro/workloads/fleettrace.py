"""Trace-driven fleet workloads: realistic load for million-user serving.

"Measuring the impact of input data on energy consumption of software"
(PAPERS.md) makes the case that energy behaviour is a function of *what*
arrives, not just *how much*; these generators produce the arrival
shapes a production fleet actually sees:

* :func:`diurnal_arrivals` — an inhomogeneous Poisson process whose rate
  follows a day/night cycle (the baseline load of a user-facing
  service);
* :func:`flash_crowd_arrivals` — piecewise rate steps layered on a base
  rate (a product launch, a breaking-news spike);
* :func:`zipf_tenant_trace` — Zipf-skewed tenant identities, so a few
  hot tenants dominate exactly the way real multi-tenant traffic does.

Everything follows the repository's seed discipline: randomness arrives
as a generator, an :class:`~repro.sim.rng.RngFactory` or an int seed
(expanded through the named ``"arrivals"`` stream), and the same seed
reproduces the same trace bit-for-bit.  The non-homogeneous processes
use Lewis–Shedler thinning against the peak rate, which keeps the draw
sequence a pure function of the seed regardless of the rate profile.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.errors import WorkloadError
from repro.sim.rng import RngFactory
from repro.workloads.arrivals import RngLike, _coerce_rng
from repro.workloads.popularity import ZipfPopularity

__all__ = [
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "zipf_tenant_trace",
    "TenantRequest",
    "fleet_request_trace",
    "request_unit",
]


def _thinned_poisson(rate_fn: Callable[[float], float], rate_max: float,
                     horizon_seconds: float,
                     generator: np.random.Generator) -> list[float]:
    """Lewis–Shedler thinning: arrivals of a rate-``rate_fn(t)`` process.

    Candidate arrivals come from a homogeneous process at ``rate_max``;
    each is kept with probability ``rate_fn(t) / rate_max``.  Exactly two
    draws per candidate, so the trace is a pure function of the seed.
    """
    times: list[float] = []
    t = 0.0
    while True:
        t += float(generator.exponential(1.0 / rate_max))
        if t >= horizon_seconds:
            return times
        if generator.random() * rate_max < rate_fn(t):
            times.append(t)


def diurnal_arrivals(mean_rate: float, horizon_seconds: float,
                     rng: RngLike,
                     period_seconds: float = 86400.0,
                     amplitude: float = 0.8,
                     phase_seconds: float = 0.0) -> list[float]:
    """A day/night cycle: Poisson arrivals with a sinusoidal rate.

    The instantaneous rate is ``mean_rate * (1 + amplitude *
    sin(2*pi*(t - phase)/period))`` — peak traffic ``(1+amplitude)`` times
    the mean, trough ``(1-amplitude)`` times.  ``amplitude`` must stay in
    ``[0, 1]`` so the rate never goes negative.  Zero mean rate or zero
    horizon returns the empty list; timestamps are strictly inside
    ``[0, horizon)``.
    """
    if mean_rate < 0:
        raise WorkloadError(f"mean_rate must be >= 0, got {mean_rate}")
    if horizon_seconds < 0:
        raise WorkloadError("the horizon must be >= 0")
    if not 0.0 <= amplitude <= 1.0:
        raise WorkloadError(f"amplitude must be in [0, 1], got {amplitude}")
    if period_seconds <= 0:
        raise WorkloadError("period_seconds must be positive")
    if mean_rate == 0 or horizon_seconds == 0:
        return []
    omega = 2.0 * math.pi / period_seconds

    def rate(t: float) -> float:
        return mean_rate * (1.0 + amplitude
                            * math.sin(omega * (t - phase_seconds)))

    return _thinned_poisson(rate, mean_rate * (1.0 + amplitude),
                            horizon_seconds, _coerce_rng(rng))


def flash_crowd_arrivals(base_rate: float, peak_rate: float,
                         crowds: Sequence[tuple[float, float]],
                         horizon_seconds: float,
                         rng: RngLike) -> list[float]:
    """Flash crowds: rate steps from ``base_rate`` to ``peak_rate``.

    ``crowds`` is a sequence of ``(start_s, duration_s)`` windows during
    which the arrival rate jumps to ``peak_rate``; outside them it is
    ``base_rate``.  Windows may overlap (the rate is simply
    ``peak_rate`` wherever at least one is active).  Timestamps are
    strictly inside ``[0, horizon)``.
    """
    if base_rate < 0 or peak_rate < 0:
        raise WorkloadError("rates must be >= 0")
    if peak_rate < base_rate:
        raise WorkloadError(
            f"peak_rate ({peak_rate}) must be >= base_rate ({base_rate})")
    if horizon_seconds < 0:
        raise WorkloadError("the horizon must be >= 0")
    windows = []
    for start, duration in crowds:
        if duration < 0:
            raise WorkloadError(f"crowd duration must be >= 0, "
                                f"got {duration}")
        windows.append((float(start), float(start) + float(duration)))
    rate_max = max(base_rate, peak_rate if windows else base_rate)
    if rate_max == 0 or horizon_seconds == 0:
        return []

    def rate(t: float) -> float:
        for start, end in windows:
            if start <= t < end:
                return peak_rate
        return base_rate

    return _thinned_poisson(rate, rate_max, horizon_seconds,
                            _coerce_rng(rng))


#: Stream name for tenant-identity draws when a seed/factory is given.
TENANTS_STREAM = "tenants"


def zipf_tenant_trace(n_requests: int, n_tenants: int,
                      rng: RngLike, alpha: float = 1.1) -> np.ndarray:
    """Zipf-skewed tenant ids for a multi-tenant request stream.

    Returns an ``int64`` array of length ``n_requests`` with values in
    ``[0, n_tenants)``; tenant 0 is the hottest.  Skewed tenant traffic
    is what makes *sharded* budget enforcement interesting: the hot
    tenant's draws land on every replica while its budget is global.
    """
    if n_requests < 0:
        raise WorkloadError("n_requests must be >= 0")
    if isinstance(rng, RngFactory):
        generator = rng.stream(TENANTS_STREAM)
    elif isinstance(rng, (int, np.integer)) \
            and not isinstance(rng, np.random.Generator):
        generator = RngFactory(int(rng)).stream(TENANTS_STREAM)
    else:
        generator = _coerce_rng(rng)
    popularity = ZipfPopularity(n_tenants, alpha)
    return popularity.sample(generator, n_requests).astype(np.int64)


@dataclass(frozen=True, slots=True)
class TenantRequest:
    """One fleet request: who is asking, when, and how much work.

    Carries only the *abstraction* of the input (§3): ``work`` is the
    request's size in abstract work units — the argument the cost model
    prices — never a payload.
    """

    request_id: int
    tenant: int
    arrival_s: float
    work: float = 1.0

    def __post_init__(self) -> None:
        if self.tenant < 0:
            raise WorkloadError(f"tenant must be >= 0, got {self.tenant}")
        if self.work <= 0:
            raise WorkloadError(f"work must be positive, got {self.work}")


def request_unit(request_id: int, tenant: int, salt: int = 0) -> float:
    """A deterministic uniform in ``[0, 1)`` tied to a request identity.

    Derived from a CRC over ``(request_id, tenant, salt)`` — no RNG
    state, so cost models can vary per-request behaviour while staying a
    pure function of the trace (replays are bitwise).
    """
    crc = zlib.crc32(f"{request_id}:{tenant}:{salt}".encode("ascii"))
    return crc / 4294967296.0


def fleet_request_trace(times: Sequence[float], tenants: Sequence[int],
                        rng: RngLike,
                        work_range: tuple[float, float] = (0.5, 2.0)
                        ) -> Iterator[TenantRequest]:
    """Zip arrivals and tenant ids into a lazy :class:`TenantRequest` stream.

    Lazy on purpose: a million-request trace should stream through the
    fleet, not sit in memory.  Work sizes are uniform over
    ``work_range``, drawn from the ``"work"`` stream when a seed or
    factory is supplied.
    """
    if len(times) != len(tenants):
        raise WorkloadError(
            f"{len(times)} arrival times for {len(tenants)} tenant ids")
    low, high = work_range
    if not 0 < low <= high:
        raise WorkloadError(
            f"work_range must satisfy 0 < low <= high, got {work_range}")
    if isinstance(rng, RngFactory):
        generator = rng.stream("work")
    elif isinstance(rng, (int, np.integer)) \
            and not isinstance(rng, np.random.Generator):
        generator = RngFactory(int(rng)).stream("work")
    else:
        generator = _coerce_rng(rng)

    def iterate() -> Iterator[TenantRequest]:
        for index, (t, tenant) in enumerate(zip(times, tenants)):
            work = float(generator.uniform(low, high))
            yield TenantRequest(request_id=index, tenant=int(tenant),
                                arrival_s=float(t), work=work)

    return iterate()
