"""Request arrival processes for the service simulations.

Every stochastic generator accepts its randomness in three equivalent
forms, so serving benchmarks are reproducible run-to-run without callers
having to construct generators themselves:

* a ``numpy.random.Generator`` (used as-is),
* an ``int`` seed — expanded through :class:`repro.sim.rng.RngFactory`
  into the named ``"arrivals"`` stream, bit-for-bit stable,
* an :class:`~repro.sim.rng.RngFactory` — its ``"arrivals"`` stream is
  drawn, keeping arrival randomness independent of every other stream
  derived from the same root seed.
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

from repro.core.errors import WorkloadError
from repro.sim.rng import RngFactory

__all__ = ["poisson_arrivals", "uniform_arrivals", "bursty_arrivals",
           "interarrival_iter"]

#: What the stochastic generators accept as their randomness source.
RngLike = Union[np.random.Generator, RngFactory, int]

#: Stream name used when expanding a seed or factory.
ARRIVALS_STREAM = "arrivals"


def _coerce_rng(rng: RngLike) -> np.random.Generator:
    """Expand a seed/factory into the named arrivals stream."""
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, RngFactory):
        return rng.stream(ARRIVALS_STREAM)
    if isinstance(rng, (int, np.integer)):
        return RngFactory(int(rng)).stream(ARRIVALS_STREAM)
    raise WorkloadError(
        f"rng must be a numpy Generator, an RngFactory or an int seed; "
        f"got {type(rng).__name__}")


def poisson_arrivals(rate_per_second: float, horizon_seconds: float,
                     rng: RngLike) -> list[float]:
    """Arrival timestamps of a Poisson process over ``[0, horizon)``.

    A zero rate or a zero horizon is a valid degenerate workload (no
    requests arrive) and returns the empty list; only *negative* values
    are configuration errors.  Every timestamp is strictly below the
    horizon, so ``horizon`` composes exactly with phase/window bounds.
    """
    if rate_per_second < 0:
        raise WorkloadError(f"arrival rate must be >= 0, got "
                            f"{rate_per_second}")
    if horizon_seconds < 0:
        raise WorkloadError("the horizon must be >= 0")
    if rate_per_second == 0 or horizon_seconds == 0:
        return []
    generator = _coerce_rng(rng)
    times: list[float] = []
    t = 0.0
    while True:
        t += float(generator.exponential(1.0 / rate_per_second))
        if t >= horizon_seconds:
            return times
        times.append(t)


def uniform_arrivals(n_requests: int, horizon_seconds: float) -> list[float]:
    """Evenly spaced arrivals (a deterministic baseline)."""
    if n_requests < 0:
        raise WorkloadError("n_requests must be >= 0")
    if horizon_seconds <= 0:
        raise WorkloadError("the horizon must be positive")
    spacing = horizon_seconds / max(n_requests, 1)
    return [spacing * (index + 0.5) for index in range(n_requests)]


def bursty_arrivals(base_rate: float, burst_rate: float,
                    burst_fraction: float, horizon_seconds: float,
                    rng: RngLike,
                    phase_seconds: float = 1.0) -> list[float]:
    """A two-state modulated Poisson process (quiet/burst phases).

    Phases alternate with exponential durations; ``burst_fraction`` is the
    long-run fraction of time spent bursting.

    Zero rates are valid (a phase with rate 0 simply produces no
    arrivals) and a zero horizon returns the empty list.  All timestamps
    are strictly inside ``[0, horizon)``: an arrival landing exactly on a
    phase boundary belongs to the *next* phase's process, and one landing
    exactly on the horizon is outside the window.  Zero-length phases
    (possible when ``burst_fraction`` is 0) consume no arrival draws, so
    the trace at a fixed seed does not shift when a degenerate phase is
    inserted.
    """
    if not 0.0 <= burst_fraction < 1.0:
        raise WorkloadError("burst_fraction must be in [0, 1)")
    if base_rate < 0 or burst_rate < 0:
        raise WorkloadError("rates must be >= 0")
    if horizon_seconds < 0:
        raise WorkloadError("the horizon must be >= 0")
    if phase_seconds <= 0:
        raise WorkloadError("phase_seconds must be positive")
    generator = _coerce_rng(rng)
    times: list[float] = []
    t = 0.0
    bursting = False
    while t < horizon_seconds:
        if bursting:
            duration = float(generator.exponential(
                phase_seconds * burst_fraction))
        else:
            duration = float(generator.exponential(
                phase_seconds * (1.0 - burst_fraction)))
        end = min(t + duration, horizon_seconds)
        rate = burst_rate if bursting else base_rate
        if rate > 0 and end > t:
            clock = t
            while True:
                clock += float(generator.exponential(1.0 / rate))
                if clock >= end:
                    break
                times.append(clock)
        t = end
        bursting = not bursting
    return times


def interarrival_iter(times: list[float]) -> Iterator[float]:
    """Gaps between consecutive arrivals (first gap from t=0)."""
    previous = 0.0
    for t in times:
        yield t - previous
        previous = t
