"""Request arrival processes for the service simulations."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.errors import WorkloadError

__all__ = ["poisson_arrivals", "uniform_arrivals", "bursty_arrivals"]


def poisson_arrivals(rate_per_second: float, horizon_seconds: float,
                     rng: np.random.Generator) -> list[float]:
    """Arrival timestamps of a Poisson process over ``[0, horizon]``."""
    if rate_per_second <= 0:
        raise WorkloadError(f"arrival rate must be positive, got "
                            f"{rate_per_second}")
    if horizon_seconds <= 0:
        raise WorkloadError("the horizon must be positive")
    times: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_per_second))
        if t >= horizon_seconds:
            return times
        times.append(t)


def uniform_arrivals(n_requests: int, horizon_seconds: float) -> list[float]:
    """Evenly spaced arrivals (a deterministic baseline)."""
    if n_requests < 0:
        raise WorkloadError("n_requests must be >= 0")
    if horizon_seconds <= 0:
        raise WorkloadError("the horizon must be positive")
    spacing = horizon_seconds / max(n_requests, 1)
    return [spacing * (index + 0.5) for index in range(n_requests)]


def bursty_arrivals(base_rate: float, burst_rate: float,
                    burst_fraction: float, horizon_seconds: float,
                    rng: np.random.Generator,
                    phase_seconds: float = 1.0) -> list[float]:
    """A two-state modulated Poisson process (quiet/burst phases).

    Phases alternate with exponential durations; ``burst_fraction`` is the
    long-run fraction of time spent bursting.
    """
    if not 0.0 <= burst_fraction < 1.0:
        raise WorkloadError("burst_fraction must be in [0, 1)")
    if base_rate <= 0 or burst_rate <= 0:
        raise WorkloadError("rates must be positive")
    times: list[float] = []
    t = 0.0
    bursting = False
    while t < horizon_seconds:
        if bursting:
            duration = float(rng.exponential(phase_seconds * burst_fraction))
        else:
            duration = float(rng.exponential(
                phase_seconds * (1.0 - burst_fraction)))
        end = min(t + duration, horizon_seconds)
        rate = burst_rate if bursting else base_rate
        clock = t
        while True:
            clock += float(rng.exponential(1.0 / rate))
            if clock >= end:
                break
            times.append(clock)
        t = end
        bursting = not bursting
    return times


def interarrival_iter(times: list[float]) -> Iterator[float]:
    """Gaps between consecutive arrivals (first gap from t=0)."""
    previous = 0.0
    for t in times:
        yield t - previous
        previous = t


__all__.append("interarrival_iter")
