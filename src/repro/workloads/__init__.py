"""Workload generators: arrivals, popularity, traces."""

from repro.workloads.arrivals import (
    bursty_arrivals,
    interarrival_iter,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.fleettrace import (
    TenantRequest,
    diurnal_arrivals,
    flash_crowd_arrivals,
    fleet_request_trace,
    request_unit,
    zipf_tenant_trace,
)
from repro.workloads.popularity import UniformPopularity, ZipfPopularity
from repro.workloads.traces import (
    GenerationRequest,
    ImageRequest,
    KVRequest,
    generation_trace,
    image_request_trace,
    kv_request_trace,
    repeated_image_trace,
)

__all__ = [
    "poisson_arrivals", "uniform_arrivals", "bursty_arrivals",
    "interarrival_iter",
    "diurnal_arrivals", "flash_crowd_arrivals", "zipf_tenant_trace",
    "TenantRequest", "fleet_request_trace", "request_unit",
    "ZipfPopularity", "UniformPopularity",
    "ImageRequest", "GenerationRequest", "KVRequest",
    "image_request_trace", "repeated_image_trace",
    "generation_trace", "kv_request_trace",
]
