"""Workload generators: arrivals, popularity, traces."""

from repro.workloads.arrivals import (
    bursty_arrivals,
    interarrival_iter,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.popularity import UniformPopularity, ZipfPopularity
from repro.workloads.traces import (
    GenerationRequest,
    ImageRequest,
    generation_trace,
    image_request_trace,
)

__all__ = [
    "poisson_arrivals", "uniform_arrivals", "bursty_arrivals",
    "interarrival_iter",
    "ZipfPopularity", "UniformPopularity",
    "ImageRequest", "GenerationRequest", "image_request_trace",
    "generation_trace",
]
