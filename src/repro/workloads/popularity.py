"""Object-popularity distributions (what drives cache hit rates)."""

from __future__ import annotations

import numpy as np

from repro.core.errors import WorkloadError

__all__ = ["ZipfPopularity", "UniformPopularity"]


class ZipfPopularity:
    """Zipf-distributed popularity over a finite catalogue.

    ``p(rank k) ∝ 1 / k^alpha`` — the canonical web-object popularity
    model.  Higher ``alpha`` concentrates requests on few hot objects
    (higher cache hit rates); ``alpha -> 0`` approaches uniform.
    """

    def __init__(self, n_objects: int, alpha: float = 0.9) -> None:
        if n_objects <= 0:
            raise WorkloadError("n_objects must be positive")
        if alpha < 0:
            raise WorkloadError("alpha must be >= 0")
        self.n_objects = n_objects
        self.alpha = alpha
        weights = 1.0 / np.arange(1, n_objects + 1, dtype=float) ** alpha
        self._probabilities = weights / weights.sum()

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw object ids (0-based ranks, 0 = hottest)."""
        return rng.choice(self.n_objects, size=n, p=self._probabilities)

    def probability(self, rank: int) -> float:
        """Request probability of the object at ``rank`` (0-based)."""
        return float(self._probabilities[rank])

    def expected_hit_rate(self, cache_entries: int) -> float:
        """Hit rate of an ideal cache holding the ``cache_entries`` hottest.

        A useful analytic approximation for LRU under Zipf traffic —
        tests compare the simulated LRU against it.
        """
        entries = min(cache_entries, self.n_objects)
        return float(self._probabilities[:entries].sum())


class UniformPopularity:
    """Every object equally likely (the cache-hostile baseline)."""

    def __init__(self, n_objects: int) -> None:
        if n_objects <= 0:
            raise WorkloadError("n_objects must be positive")
        self.n_objects = n_objects

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw object ids uniformly."""
        return rng.integers(0, self.n_objects, size=n)

    def probability(self, rank: int) -> float:
        """Request probability of any object."""
        return 1.0 / self.n_objects

    def expected_hit_rate(self, cache_entries: int) -> float:
        """Ideal-cache hit rate under uniform traffic."""
        return min(cache_entries, self.n_objects) / self.n_objects
