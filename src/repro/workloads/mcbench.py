"""The S2 Monte Carlo benchmark stack: a vectorizable composed service.

Exact enumeration (the evaluator's first choice) dies combinatorially the
moment continuous ECVs appear, so the framework falls back to Monte Carlo
— and §3's promise that interfaces stay cheap to query then rests on how
fast the sampler is.  This module defines the composed three-layer stack
(service → CPU → DRAM) the engine benchmarks and the ``repro-energy
bench`` command evaluate: every energy method is plain arithmetic over
its ECVs, so the vectorized engine runs it once over whole sample
columns, while the serial engine pays one Python execution per sample.

The stack mixes the ECV kinds the column sampler has to get bitwise
right: a Bernoulli (DRAM row hits), a uniform integer (active cores) and
two continuous ranges (clock and load).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.ecv import BernoulliECV, ContinuousECV, UniformIntECV
from repro.core.interface import EnergyInterface, evaluate
from repro.core.mcengine import MCEngine
from repro.core.session import EvalSession
from repro.core.units import Energy

__all__ = ["DramInterface", "CpuInterface", "BenchServiceInterface",
           "build_bench_interface", "run_engine_bench"]

#: The canonical benchmark operating point (abstract input and budget).
BENCH_OPS = 10_000_000
BENCH_SAMPLES = 20_000
BENCH_SEED = 7


class DramInterface(EnergyInterface):
    """Per-access DRAM energy, split by row-buffer hit or miss."""

    def __init__(self) -> None:
        super().__init__("dram")
        self.declare_ecv(BernoulliECV(
            "row_hit", p=0.6, description="row-buffer hit on access"))

    def E_access(self, nbytes):
        hit = self.ecv("row_hit")
        # Bool arithmetic instead of branching keeps the method
        # vectorizable: a hit costs 0.02 nJ/B, a miss 0.11 nJ/B.
        per_byte = hit * 0.02 + (1 - hit) * 0.11
        return Energy.nanojoules(per_byte * nbytes)


class CpuInterface(EnergyInterface):
    """Dynamic CPU energy (f^2 scaling) plus the memory traffic it drives."""

    def __init__(self, dram: DramInterface) -> None:
        super().__init__("cpu")
        self.dram = dram
        self.declare_ecv(ContinuousECV(
            "f_ghz", low=1.2, high=3.4, description="DVFS clock"))
        self.declare_ecv(UniformIntECV(
            "active_cores", low=1, high=8, description="cores awake"))

    def E_compute(self, ops):
        f = self.ecv("f_ghz")
        cores = self.ecv("active_cores")
        dynamic = 0.9 * f * f * ops * 1e-9
        return (Energy.joules(dynamic * cores / 8)
                + self.dram.E_access(ops // 16))


class BenchServiceInterface(EnergyInterface):
    """The request-level interface the benchmark evaluates."""

    def __init__(self, cpu: CpuInterface) -> None:
        super().__init__("bench_service")
        self.cpu = cpu
        self.declare_ecv(ContinuousECV(
            "load", low=0.1, high=1.0, description="background load factor"))

    def E_handle(self, req_ops):
        load = self.ecv("load")
        return self.cpu.E_compute(req_ops) * (0.5 + 0.5 * load)

    def E_wait(self, seconds):
        """Queueing energy while a request waits: affine in the load ECV.

        Deliberately affine so the compile layer (S5) has a closed-form
        target on the same stack: 0.05 J/s of base power plus 0.8 J/s
        scaled by the background load.
        """
        load = self.ecv("load")
        return Energy.joules(0.05 * seconds + 0.8 * seconds * load)


def build_bench_interface() -> BenchServiceInterface:
    """The composed service → CPU → DRAM benchmark stack."""
    return BenchServiceInterface(CpuInterface(DramInterface()))


def run_engine_bench(engine: str | MCEngine,
                     n_samples: int = BENCH_SAMPLES,
                     seed: int = BENCH_SEED,
                     ops: int = BENCH_OPS) -> dict:
    """Time one distribution-mode evaluation under ``engine``.

    Returns the wall-clock seconds, the draws themselves and summary
    statistics; every engine at the same seed must produce bitwise-equal
    draws (the replay contract of :mod:`repro.core.mcengine`).
    """
    interface = build_bench_interface()
    session = EvalSession(seed=seed, engine=engine)
    t0 = time.perf_counter()
    dist = evaluate(interface("E_handle", ops), session=session,
                    mode="distribution", n_samples=n_samples)
    elapsed = time.perf_counter() - t0
    # Continuous ECVs force the Monte Carlo path, so the result is always
    # Empirical; its (sorted) sample array is the draw set.
    draws = np.asarray(dist._samples)
    return {
        "engine": getattr(engine, "name", engine),
        "seconds": elapsed,
        "draws": draws,
        "mean_joules": float(np.mean(draws)),
        "p99_joules": float(np.quantile(draws, 0.99)),
        "n_samples": int(n_samples),
    }
