"""Workload traces: request mixes for the services and the LLM.

The paper's point (§3) is that an energy interface takes an *abstraction*
of the input; these trace records carry exactly those abstractions —
image size and zero count for the CNN service, prompt/output lengths for
the LLM — never payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import WorkloadError
from repro.workloads.popularity import ZipfPopularity

__all__ = ["ImageRequest", "GenerationRequest", "KVRequest",
           "image_request_trace", "repeated_image_trace",
           "generation_trace", "kv_request_trace"]


@dataclass(frozen=True)
class ImageRequest:
    """One request to the ML web service (Fig. 1's workload)."""

    object_id: int      # identity, for cache behaviour
    image_pixels: int   # size abstraction
    zero_pixels: int    # sparsity abstraction (§1's zero-skipping models)

    def __post_init__(self) -> None:
        if not 0 <= self.zero_pixels <= self.image_pixels:
            raise WorkloadError(
                f"zero_pixels must be in [0, image_pixels], got "
                f"{self.zero_pixels}/{self.image_pixels}")


@dataclass(frozen=True)
class GenerationRequest:
    """One LLM generation request (the §5 workload)."""

    prompt_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.prompt_tokens < 0 or self.output_tokens < 0:
            raise WorkloadError("token counts must be >= 0")


def image_request_trace(n_requests: int, rng: np.random.Generator,
                        n_objects: int = 2000, zipf_alpha: float = 0.9,
                        mean_pixels: int = 224 * 224,
                        zero_fraction_range: tuple[float, float] = (0.1, 0.5)
                        ) -> list[ImageRequest]:
    """A Zipf-popular image request stream with varying sparsity."""
    if n_requests < 0:
        raise WorkloadError("n_requests must be >= 0")
    popularity = ZipfPopularity(n_objects, zipf_alpha)
    object_ids = popularity.sample(rng, n_requests)
    low, high = zero_fraction_range
    if not 0.0 <= low <= high <= 1.0:
        raise WorkloadError("zero_fraction_range must be within [0, 1]")
    requests: list[ImageRequest] = []
    for object_id in object_ids:
        pixels = int(rng.normal(mean_pixels, mean_pixels * 0.1))
        pixels = max(pixels, 1024)
        zero_fraction = float(rng.uniform(low, high))
        requests.append(ImageRequest(
            object_id=int(object_id),
            image_pixels=pixels,
            zero_pixels=int(pixels * zero_fraction),
        ))
    return requests


def repeated_image_trace(n_requests: int, rng: np.random.Generator,
                         n_objects: int = 200, zipf_alpha: float = 1.1,
                         mean_pixels: int = 224 * 224,
                         zero_fraction_range: tuple[float, float] = (0.1, 0.5)
                         ) -> list[ImageRequest]:
    """A Zipf stream where each object keeps a *fixed* abstraction.

    Unlike :func:`image_request_trace`, repeated requests for the same
    object carry identical ``(image_pixels, zero_pixels)`` — the same
    image has the same size and sparsity every time it is requested.
    This is the workload shape that makes serving-time memoization of
    interface evaluations pay off: popular objects collapse onto few
    abstract inputs.
    """
    if n_requests < 0:
        raise WorkloadError("n_requests must be >= 0")
    low, high = zero_fraction_range
    if not 0.0 <= low <= high <= 1.0:
        raise WorkloadError("zero_fraction_range must be within [0, 1]")
    pixels_by_object = np.maximum(
        rng.normal(mean_pixels, mean_pixels * 0.1, size=n_objects), 1024
    ).astype(int)
    zero_by_object = (pixels_by_object
                      * rng.uniform(low, high, size=n_objects)).astype(int)
    popularity = ZipfPopularity(n_objects, zipf_alpha)
    return [ImageRequest(
        object_id=int(object_id),
        image_pixels=int(pixels_by_object[object_id]),
        zero_pixels=int(zero_by_object[object_id]),
    ) for object_id in popularity.sample(rng, n_requests)]


@dataclass(frozen=True)
class KVRequest:
    """One operation against the flash key-value store."""

    op: str       # "put" or "get"
    key: int

    def __post_init__(self) -> None:
        if self.op not in ("put", "get"):
            raise WorkloadError(f"KV op must be 'put' or 'get', got "
                                f"{self.op!r}")


def kv_request_trace(n_requests: int, rng: np.random.Generator,
                     put_fraction: float = 0.5,
                     n_keys: int = 1000) -> list[KVRequest]:
    """A put/get mix over a uniform key space."""
    if n_requests < 0:
        raise WorkloadError("n_requests must be >= 0")
    if not 0.0 <= put_fraction <= 1.0:
        raise WorkloadError("put_fraction must be in [0, 1]")
    ops = rng.random(n_requests) < put_fraction
    keys = rng.integers(0, max(n_keys, 1), size=n_requests)
    return [KVRequest("put" if is_put else "get", int(key))
            for is_put, key in zip(ops, keys)]


def generation_trace(n_requests: int, rng: np.random.Generator,
                     prompt_range: tuple[int, int] = (8, 64),
                     max_output: int = 200) -> list[GenerationRequest]:
    """The §5 workload: generations of up to ``max_output`` tokens."""
    if n_requests < 0:
        raise WorkloadError("n_requests must be >= 0")
    requests: list[GenerationRequest] = []
    for _ in range(n_requests):
        prompt = int(rng.integers(prompt_range[0], prompt_range[1] + 1))
        output = int(rng.integers(max_output // 4, max_output + 1))
        requests.append(GenerationRequest(prompt, output))
    return requests
