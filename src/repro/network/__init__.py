"""Wide-area network energy: links, hops, paths and their interfaces."""

from repro.network.path import (
    Hop,
    LinkSpec,
    NetworkPath,
    PathEnergyInterface,
    RouterSpec,
)

__all__ = ["LinkSpec", "RouterSpec", "Hop", "NetworkPath",
           "PathEnergyInterface"]
