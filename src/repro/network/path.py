"""Multi-hop network paths and their energy interfaces.

§6's asymmetry argument: "the energy consumption of a web request from
Switzerland to a server in Taiwan consists of the energy consumption at
all layers of the software stack and all machines that processed the
request along the way.  In contrast, the latency of the request can be
measured directly from the client side, hiding the complexity of the
network."

This module gives that sentence an executable form.  A
:class:`NetworkPath` is a sequence of hops (router + outgoing link);
its :class:`PathEnergyInterface` computes a request's energy as the sum
over every hop — per-bit link energy, per-packet router processing, and
each device's amortised static share — while its latency is a single
client-observable number.  The A11 benchmark then shows the asymmetry
quantitatively: hiding any one hop barely moves latency accounting but
silently loses a fixed share of the *energy*, which is why energy needs
interfaces where latency needs only a stopwatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import WorkloadError
from repro.core.interface import EnergyInterface
from repro.core.units import Energy

__all__ = ["LinkSpec", "RouterSpec", "Hop", "NetworkPath",
           "PathEnergyInterface"]

#: Ethernet-ish packetisation.
MTU_BYTES = 1500


@dataclass(frozen=True)
class LinkSpec:
    """One transmission segment (fibre span, submarine cable, last mile)."""

    name: str
    length_km: float
    joules_per_bit: float = 2.5e-9     # transceivers + amplifiers, per bit
    propagation_km_per_s: float = 2.0e5   # light in fibre

    def __post_init__(self) -> None:
        if self.length_km <= 0:
            raise WorkloadError(f"link {self.name!r} needs positive length")
        if self.joules_per_bit < 0 or self.propagation_km_per_s <= 0:
            raise WorkloadError(f"link {self.name!r} has invalid physics")

    def transmission_energy(self, n_bytes: int) -> float:
        """Joules to push ``n_bytes`` across this link."""
        return n_bytes * 8 * self.joules_per_bit

    def propagation_seconds(self) -> float:
        """One-way propagation delay."""
        return self.length_km / self.propagation_km_per_s


@dataclass(frozen=True)
class RouterSpec:
    """One forwarding device (edge router, core router, DC switch)."""

    name: str
    joules_per_packet: float = 20e-6     # lookup + buffering + switching
    static_power_w: float = 3000.0       # chassis power
    utilization: float = 0.3             # long-run traffic share
    capacity_pps: float = 1e8            # packets per second at 100%

    def __post_init__(self) -> None:
        if self.joules_per_packet < 0 or self.static_power_w < 0:
            raise WorkloadError(f"router {self.name!r} has negative energy")
        if not 0.0 < self.utilization <= 1.0:
            raise WorkloadError(f"router {self.name!r} utilisation must be "
                                f"in (0, 1]")
        if self.capacity_pps <= 0:
            raise WorkloadError(f"router {self.name!r} needs capacity")

    def dynamic_energy(self, n_packets: int) -> float:
        """Joules of switching work for ``n_packets``."""
        return n_packets * self.joules_per_packet

    def static_share(self, n_packets: int) -> float:
        """This request's amortised share of the chassis power.

        The standard attribution: static power divided by the packets
        actually flowing (utilisation x capacity).
        """
        carried_pps = self.utilization * self.capacity_pps
        return self.static_power_w * n_packets / carried_pps


@dataclass(frozen=True)
class Hop:
    """A router plus its outgoing link."""

    router: RouterSpec
    link: LinkSpec


class NetworkPath:
    """An ordered sequence of hops from client to server."""

    def __init__(self, name: str, hops: Sequence[Hop]) -> None:
        if not hops:
            raise WorkloadError(f"path {name!r} needs at least one hop")
        self.name = name
        self.hops = list(hops)

    @property
    def length_km(self) -> float:
        """Total route length."""
        return sum(hop.link.length_km for hop in self.hops)

    def one_way_latency(self) -> float:
        """Client-observable propagation latency, in seconds.

        This is the stopwatch number — it needs no cooperation from the
        hops at all.
        """
        return sum(hop.link.propagation_seconds() for hop in self.hops)

    def packets_for(self, n_bytes: int) -> int:
        """MTU packetisation."""
        if n_bytes < 0:
            raise WorkloadError("payload must be >= 0")
        return max(-(-n_bytes // MTU_BYTES), 1)


class PathEnergyInterface(EnergyInterface):
    """Energy of a request over a path: the sum over every hop.

    Unlike latency, *every term requires the hop's own interface* —
    there is no client-side measurement that recovers it.
    ``E_request`` covers one direction; ``E_round_trip`` adds the
    response.
    """

    def __init__(self, path: NetworkPath,
                 include_static_share: bool = True) -> None:
        super().__init__(f"E_{path.name}")
        self.path = path
        self.include_static_share = include_static_share

    def E_hop(self, hop_index: int, n_bytes: int) -> Energy:
        """One hop's contribution for a payload."""
        if not 0 <= hop_index < len(self.path.hops):
            raise WorkloadError(f"no hop {hop_index} on {self.path.name!r}")
        hop = self.path.hops[hop_index]
        packets = self.path.packets_for(n_bytes)
        joules = (hop.link.transmission_energy(n_bytes)
                  + hop.router.dynamic_energy(packets))
        if self.include_static_share:
            joules += hop.router.static_share(packets)
        return Energy(joules)

    def E_request(self, n_bytes: int) -> Energy:
        """One direction, all hops."""
        total = Energy(0.0)
        for index in range(len(self.path.hops)):
            total = total + self.E_hop(index, n_bytes)
        return total

    def E_round_trip(self, request_bytes: int, response_bytes: int) -> Energy:
        """Request out, response back."""
        return (self.E_request(request_bytes)
                + self.E_request(response_bytes))

    def T_one_way(self) -> float:
        """The latency the client could have measured by itself."""
        return self.path.one_way_latency()
