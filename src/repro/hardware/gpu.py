"""A counter-level GPU simulator — the substrate for the §5 experiment.

The paper's preliminary experiment models GPT-2 inference energy "in terms
of static power, VRAM sector reads/writes, L2 sector reads/writes, L1
wavefront reads/writes, and instruction executions".  This simulator
produces exactly those quantities: kernels are described by their counter
footprint (:class:`KernelProfile`), the GPU executes them with a
roofline-style duration model, accounts dynamic energy per counter, and
accrues static power (with temperature-dependent leakage) between and
during kernels.

Realism knobs that create honest prediction error for the energy
interface, mirroring why the paper saw 0.7 % error on an RTX 4090 but
6 % on an RTX 3070:

* **DRAM row activations** — a per-kernel fraction of VRAM sectors pays a
  row-activation energy that is *not* exposed as a counter, so interfaces
  (and the least-squares calibration) can only absorb its average.
* **Kernel-launch overhead** — fixed driver/scheduling energy per launch.
* **Thermal leakage** — static power rises with die temperature, so long
  runs drift away from a constant-static-power model.

The counters the GPU *does* expose (:class:`GPUCounters`) are the ones an
Nsight-Compute-style profiler would report; the NVML-style power/energy
reader lives in :mod:`repro.measurement.nvml`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.errors import HardwareError
from repro.hardware.component import Component
from repro.hardware.thermal import LeakageModel, ThermalNode

__all__ = ["GPUSpec", "KernelProfile", "GPUCounters", "GPU"]

#: Bytes per L2/VRAM sector and per L1 wavefront (Nvidia conventions).
SECTOR_BYTES = 32
WAVEFRONT_BYTES = 128


@dataclass(frozen=True)
class GPUSpec:
    """Energy and throughput characteristics of a GPU model.

    Per-event energies are in Joules; rates are events per second.
    ``e_vram_row_activate`` and ``row_miss_fraction_default`` model the
    hidden DRAM row-activation cost described in the module docstring.
    """

    name: str
    # per-event dynamic energy
    e_instruction: float
    e_l1_wavefront: float
    e_l2_sector: float
    e_vram_sector: float
    e_vram_row_activate: float
    e_kernel_launch: float
    # static power and thermals
    p_static_w: float
    thermal_r: float
    thermal_c: float
    leakage_coeff: float
    t_ambient: float = 25.0
    # throughput (roofline duration model)
    instr_rate: float = 1e13          # warp instructions / s
    l1_rate: float = 4e12             # wavefronts / s
    l2_rate: float = 1.5e11           # sectors / s
    vram_rate: float = 3.0e10         # sectors / s
    kernel_launch_latency: float = 4e-6   # s per launch
    row_miss_fraction_default: float = 0.05

    def __post_init__(self) -> None:
        for attr in ("e_instruction", "e_l1_wavefront", "e_l2_sector",
                     "e_vram_sector", "e_vram_row_activate", "e_kernel_launch",
                     "p_static_w", "instr_rate", "l1_rate", "l2_rate",
                     "vram_rate"):
            if getattr(self, attr) < 0:
                raise HardwareError(f"GPU spec {self.name!r}: {attr} must be >= 0")


@dataclass(frozen=True)
class KernelProfile:
    """The counter footprint of one kernel launch.

    ``row_miss_fraction`` is the fraction of VRAM sectors that open a new
    DRAM row — large streaming kernels have low fractions, scattered
    accesses high ones.  ``None`` uses the GPU spec's default.
    """

    name: str
    instructions: float = 0.0
    l1_wavefronts: float = 0.0
    l2_sectors: float = 0.0
    vram_sectors: float = 0.0
    row_miss_fraction: float | None = None

    def __post_init__(self) -> None:
        for attr in ("instructions", "l1_wavefronts", "l2_sectors",
                     "vram_sectors"):
            if getattr(self, attr) < 0:
                raise HardwareError(f"kernel {self.name!r}: {attr} must be >= 0")
        if self.row_miss_fraction is not None and not (
                0.0 <= self.row_miss_fraction <= 1.0):
            raise HardwareError(
                f"kernel {self.name!r}: row_miss_fraction must be in [0, 1]")

    def scaled(self, factor: float) -> "KernelProfile":
        """The same kernel with all counters scaled by ``factor``."""
        return replace(
            self,
            instructions=self.instructions * factor,
            l1_wavefronts=self.l1_wavefronts * factor,
            l2_sectors=self.l2_sectors * factor,
            vram_sectors=self.vram_sectors * factor,
        )


@dataclass
class GPUCounters:
    """Cumulative profiler-visible counters (Nsight-style)."""

    instructions: float = 0.0
    l1_wavefronts: float = 0.0
    l2_sectors: float = 0.0
    vram_sectors: float = 0.0
    kernel_launches: int = 0
    busy_seconds: float = 0.0

    def snapshot(self) -> "GPUCounters":
        """An independent copy of the current values."""
        return GPUCounters(self.instructions, self.l1_wavefronts,
                           self.l2_sectors, self.vram_sectors,
                           self.kernel_launches, self.busy_seconds)

    def delta(self, earlier: "GPUCounters") -> "GPUCounters":
        """Counter increments since an earlier snapshot."""
        return GPUCounters(
            self.instructions - earlier.instructions,
            self.l1_wavefronts - earlier.l1_wavefronts,
            self.l2_sectors - earlier.l2_sectors,
            self.vram_sectors - earlier.vram_sectors,
            self.kernel_launches - earlier.kernel_launches,
            self.busy_seconds - earlier.busy_seconds,
        )

    def as_dict(self) -> dict[str, float]:
        """The counters as a plain dict (used by calibration fits)."""
        return {
            "instructions": self.instructions,
            "l1_wavefronts": self.l1_wavefronts,
            "l2_sectors": self.l2_sectors,
            "vram_sectors": self.vram_sectors,
            "kernel_launches": float(self.kernel_launches),
            "busy_seconds": self.busy_seconds,
        }


class GPU(Component):
    """A GPU executing kernels sequentially on the machine clock."""

    def __init__(self, name: str, spec: GPUSpec) -> None:
        super().__init__(name, domain="gpu")
        self.spec = spec
        self.counters = GPUCounters()
        self.thermal = ThermalNode(spec.thermal_r, spec.thermal_c,
                                   spec.t_ambient)
        self.leakage = LeakageModel(spec.leakage_coeff, t_ref=spec.t_ambient)
        #: Optional :class:`repro.calibration.ComponentDrift` (duck-typed):
        #: when set, per-event energies, static power and the ambient
        #: temperature wander away from the spec over machine time.
        self.drift = None

    # -- execution ----------------------------------------------------------
    def kernel_duration(self, kernel: KernelProfile) -> float:
        """Roofline duration: the slowest pipe bounds the kernel."""
        spec = self.spec
        times = (
            kernel.instructions / spec.instr_rate,
            kernel.l1_wavefronts / spec.l1_rate,
            kernel.l2_sectors / spec.l2_rate,
            kernel.vram_sectors / spec.vram_rate,
        )
        return max(times) + spec.kernel_launch_latency

    def kernel_dynamic_energy(self, kernel: KernelProfile) -> float:
        """Ground-truth dynamic Joules for one launch (incl. hidden row cost)."""
        spec = self.spec
        row_fraction = (kernel.row_miss_fraction
                        if kernel.row_miss_fraction is not None
                        else spec.row_miss_fraction_default)
        joules = (
            kernel.instructions * spec.e_instruction
            + kernel.l1_wavefronts * spec.e_l1_wavefront
            + kernel.l2_sectors * spec.e_l2_sector
            + kernel.vram_sectors * spec.e_vram_sector
            + kernel.vram_sectors * row_fraction * spec.e_vram_row_activate
            + spec.e_kernel_launch
        )
        if self.drift is not None:
            joules *= self.drift.energy_factor(self.now)
        return joules

    def launch(self, kernel: KernelProfile, tag: str | None = None) -> float:
        """Execute a kernel now; returns its duration in seconds.

        Logs dynamic energy, bumps the profiler counters and advances the
        machine clock (static power accrues through
        :meth:`on_advance` during the kernel as well).
        """
        duration = self.kernel_duration(kernel)
        joules = self.kernel_dynamic_energy(kernel)
        t_start = self.now
        self.log_activity(t_start, t_start + duration, joules,
                          tag=tag if tag is not None else kernel.name)
        self.thermal.deposit(joules)
        counters = self.counters
        counters.instructions += kernel.instructions
        counters.l1_wavefronts += kernel.l1_wavefronts
        counters.l2_sectors += kernel.l2_sectors
        counters.vram_sectors += kernel.vram_sectors
        counters.kernel_launches += 1
        counters.busy_seconds += duration
        self.machine.advance(duration)
        return duration

    def idle(self, dt: float) -> None:
        """Let the GPU sit idle for ``dt`` seconds (static power accrues)."""
        if dt < 0:
            raise HardwareError(f"cannot idle for {dt} s")
        self.machine.advance(dt)

    # -- state ------------------------------------------------------------------
    @property
    def temperature(self) -> float:
        """Die temperature in Celsius."""
        return self.thermal.temperature

    def static_power(self) -> float:
        power = self.spec.p_static_w * self.leakage.factor(
            self.thermal.temperature)
        if self.drift is not None:
            power *= self.drift.static_factor(self.now)
        return power

    def on_advance(self, t_start: float, t_end: float) -> None:
        dt = t_end - t_start
        if dt <= 0:
            return
        if self.drift is not None:
            self.drift.advance(self.thermal, t_start)
        power = self.static_power()
        joules = power * dt
        if joules > 0:
            self.log_activity(t_start, t_end, joules, tag="static")
            self.thermal.deposit(joules)
        self.thermal.step(dt)
