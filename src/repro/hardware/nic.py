"""Simulated network interface with an explicit radio power-state machine.

This is the paper's §4.2 side-effect example made concrete: "if an app
causes a smartphone's WiFi radio to turn on, subsequent apps using WiFi
will consume less energy than if it had been them turning the radio on".
Sending on a sleeping radio *implicitly wakes it* — a state mutation whose
energy is attributed to the first sender and whose benefit accrues to
later senders.  The side-effects analysis in
:mod:`repro.analysis.sideeffects` must track exactly this.

States: ``off`` (radio powered down), ``idle`` (awake, listening),
``active`` (transmitting/receiving — modelled per operation, the
persistent states are off/idle).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import HardwareError
from repro.hardware.component import Component

__all__ = ["NICSpec", "NIC"]


@dataclass(frozen=True)
class NICSpec:
    """Energy characteristics of a network interface / radio."""

    name: str = "wifi"
    e_per_byte_tx: float = 6e-9    # J per byte transmitted
    e_per_byte_rx: float = 4e-9    # J per byte received
    e_wake: float = 0.030          # J to power the radio up
    wake_latency: float = 0.004    # s to power up
    p_idle_w: float = 0.25         # awake-listening power
    p_off_w: float = 0.002         # leakage while off
    bandwidth_bytes: float = 40e6  # B/s on the air

    def __post_init__(self) -> None:
        if min(self.e_per_byte_tx, self.e_per_byte_rx, self.e_wake,
               self.wake_latency, self.p_idle_w, self.p_off_w,
               self.bandwidth_bytes) < 0:
            raise HardwareError(f"NIC spec {self.name!r} has negative values")


class NIC(Component):
    """A NIC whose radio wakes implicitly on first use."""

    def __init__(self, name: str, spec: NICSpec | None = None) -> None:
        super().__init__(name, domain="nic")
        self.spec = spec if spec is not None else NICSpec()
        self.state = "off"
        self.bytes_tx = 0
        self.bytes_rx = 0
        self.wake_count = 0

    # -- state machine ------------------------------------------------------
    def wake(self) -> float:
        """Power the radio up; returns the latency paid (0 if already awake)."""
        if self.state != "off":
            return 0.0
        t_start = self.now
        self.log_activity(t_start, t_start + self.spec.wake_latency,
                          self.spec.e_wake, tag="wake")
        self.machine.advance(self.spec.wake_latency)
        self.state = "idle"
        self.wake_count += 1
        return self.spec.wake_latency

    def sleep(self) -> None:
        """Power the radio down."""
        self.state = "off"

    # -- traffic -------------------------------------------------------------
    def _transfer(self, n_bytes: int, per_byte: float, tag: str) -> float:
        if n_bytes < 0:
            raise HardwareError(f"cannot transfer {n_bytes} bytes")
        latency = self.wake()  # the implicit side effect
        duration = n_bytes / self.spec.bandwidth_bytes
        t_start = self.now
        self.log_activity(t_start, t_start + duration, n_bytes * per_byte,
                          tag=tag)
        self.machine.advance(duration)
        return latency + duration

    def send(self, n_bytes: int) -> float:
        """Transmit; wakes the radio if needed. Returns total seconds."""
        seconds = self._transfer(n_bytes, self.spec.e_per_byte_tx, "tx")
        self.bytes_tx += n_bytes
        return seconds

    def receive(self, n_bytes: int) -> float:
        """Receive; wakes the radio if needed. Returns total seconds."""
        seconds = self._transfer(n_bytes, self.spec.e_per_byte_rx, "rx")
        self.bytes_rx += n_bytes
        return seconds

    # -- accounting ----------------------------------------------------------
    def static_power(self) -> float:
        return self.spec.p_idle_w if self.state != "off" else self.spec.p_off_w
