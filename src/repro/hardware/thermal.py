"""A lumped RC thermal model with temperature-dependent leakage.

§6 of the paper identifies thermal coupling as the key obstacle to
"energy modularity": running a process on one core produces heat that
raises the leakage of nearby circuits.  This module provides the
first-order (single-node RC) thermal model our CPU and GPU components use:

* ``dT/dt = (P_in - (T - T_ambient) / R) / C`` integrated explicitly at
  machine-clock granularity;
* a leakage multiplier ``1 + k * (T - T_ref)``, linearised around the
  reference temperature, applied to static power.

Components that share a :class:`ThermalNode` heat each other — two cores
of the same package, or SMs of the same GPU die — which is exactly the
cross-component coupling an energy interface must either model (as a
temperature ECV) or absorb as prediction error.  Benchmark A3 quantifies
that choice.
"""

from __future__ import annotations

from repro.core.errors import HardwareError

__all__ = ["ThermalNode", "LeakageModel"]


class ThermalNode:
    """A single-node RC thermal mass heated by attached components."""

    def __init__(self, r_thermal: float, c_thermal: float,
                 t_ambient: float = 25.0) -> None:
        if r_thermal <= 0 or c_thermal <= 0:
            raise HardwareError(
                f"thermal RC constants must be positive, got R={r_thermal}, "
                f"C={c_thermal}")
        self.r_thermal = float(r_thermal)
        self.c_thermal = float(c_thermal)
        self.t_ambient = float(t_ambient)
        self.temperature = float(t_ambient)
        self._pending_joules = 0.0

    def deposit(self, joules: float) -> None:
        """Add heat produced since the last :meth:`step` call."""
        if joules < 0:
            raise HardwareError(f"cannot deposit negative heat ({joules} J)")
        self._pending_joules += joules

    def step(self, dt: float) -> float:
        """Integrate the RC equation over ``dt`` seconds; returns temperature.

        Uses sub-stepping so large machine-clock advances stay stable
        (explicit Euler diverges when ``dt`` exceeds ``2*R*C``).
        """
        if dt < 0:
            raise HardwareError(f"cannot step thermal model by {dt} s")
        if dt == 0:
            return self.temperature
        power_in = self._pending_joules / dt
        self._pending_joules = 0.0
        time_constant = self.r_thermal * self.c_thermal
        substeps = max(1, int(dt / (0.25 * time_constant)) + 1)
        h = dt / substeps
        for _ in range(substeps):
            cooling = (self.temperature - self.t_ambient) / self.r_thermal
            self.temperature += h * (power_in - cooling) / self.c_thermal
        return self.temperature

    def reset(self) -> None:
        """Return to ambient with no pending heat."""
        self.temperature = self.t_ambient
        self._pending_joules = 0.0

    @property
    def steady_state_rise(self) -> float:
        """Equilibrium temperature rise per Watt (= R)."""
        return self.r_thermal

    def __repr__(self) -> str:
        return (f"ThermalNode(T={self.temperature:.2f} C, "
                f"R={self.r_thermal}, C={self.c_thermal})")


class LeakageModel:
    """Linearised temperature-dependent leakage multiplier.

    ``factor(T) = max(0, 1 + coefficient * (T - t_ref))`` — silicon
    leakage grows roughly exponentially with temperature; over the
    20–40 °C excursions our simulations produce, the linearisation is
    accurate and keeps interfaces analysable.
    """

    def __init__(self, coefficient: float, t_ref: float = 25.0) -> None:
        if coefficient < 0:
            raise HardwareError(
                f"leakage coefficient must be >= 0, got {coefficient}")
        self.coefficient = float(coefficient)
        self.t_ref = float(t_ref)

    def factor(self, temperature: float) -> float:
        """The multiplier applied to nominal static power."""
        return max(0.0, 1.0 + self.coefficient * (temperature - self.t_ref))

    def __repr__(self) -> str:
        return f"LeakageModel(k={self.coefficient}/C, t_ref={self.t_ref} C)"
