"""A simulated machine: components, a shared clock and the energy ledger.

The machine owns the single source of truth for simulated time.  Two usage
styles coexist:

* **Sequential** (microbenchmarks, LLM inference): operations like
  ``gpu.launch(kernel)`` log their activity and advance the clock
  themselves.
* **Event-driven** (schedulers, request loops): a discrete-event
  simulation logs activities with explicit timestamps and calls
  :meth:`Machine.advance_to` as its clock progresses; static power is
  integrated on each advance.

Either way, every Joule ends up in :attr:`Machine.ledger`, which the
measurement channels in :mod:`repro.measurement` then observe imperfectly.
"""

from __future__ import annotations

from typing import TypeVar

from repro.core.errors import HardwareError
from repro.hardware.component import Component
from repro.hardware.ledger import EnergyLedger

__all__ = ["Machine"]

ComponentT = TypeVar("ComponentT", bound=Component)


class Machine:
    """A collection of components sharing a clock and an energy ledger."""

    def __init__(self, name: str = "machine") -> None:
        self.name = name
        self.ledger = EnergyLedger()
        self._now = 0.0
        self._components: dict[str, Component] = {}

    # -- structure ----------------------------------------------------------
    def add(self, component: ComponentT) -> ComponentT:
        """Attach a component; returns it for fluent construction."""
        if component.name in self._components:
            raise HardwareError(
                f"machine {self.name!r} already has a component named "
                f"{component.name!r}")
        self._components[component.name] = component
        component.attach(self)
        return component

    def component(self, name: str) -> Component:
        """Look up a component by name."""
        try:
            return self._components[name]
        except KeyError:
            raise HardwareError(
                f"machine {self.name!r} has no component named {name!r}; "
                f"known: {sorted(self._components)}") from None

    @property
    def components(self) -> list[Component]:
        """All components in attachment order."""
        return list(self._components.values())

    # -- clock ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current machine time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds, integrating static power."""
        if dt < 0:
            raise HardwareError(f"cannot advance the clock by {dt} s")
        if dt == 0:
            return self._now
        t_start = self._now
        self._now += dt
        for component in self._components.values():
            component.on_advance(t_start, self._now)
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance the clock to absolute time ``t``."""
        if t < self._now:
            raise HardwareError(
                f"cannot rewind the clock to t={t} s (now at {self._now} s)")
        return self.advance(t - self._now)

    # -- accounting convenience -----------------------------------------------
    def total_joules(self) -> float:
        """All energy accounted so far, across components."""
        return self.ledger.total_joules()

    def energy_breakdown(self) -> dict[str, float]:
        """Joules per component."""
        return self.ledger.by_component()

    def __repr__(self) -> str:
        return (f"Machine(name={self.name!r}, t={self._now:.6g} s, "
                f"components={sorted(self._components)})")
