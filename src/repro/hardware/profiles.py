"""Concrete device profiles and machine builders.

The two GPU profiles stand in for the paper's RTX 4090 and RTX 3070
(we have neither the hardware nor NVML, see DESIGN.md).  Their per-event
energies and rates are set from public figures — die process, memory
bandwidth, board power — scaled to warp-instruction / sector granularity.
The important *relationships* are preserved:

* SIM4090 (5 nm-class): lower energy per event, large L2, mild
  thermal-leakage slope, small hidden row-activation cost;
* SIM3070 (8 nm-class, GDDR6): higher per-event energy, a much larger
  hidden row-activation cost and steeper leakage — the unmodelled effects
  that give its energy interface the paper's ~6 % error instead of ~0.7 %.

The CPU profiles model a big.LITTLE part in the style of the Linux EAS
documentation, with capacities normalised to 1024.
"""

from __future__ import annotations

from repro.hardware.cpu import Core, CoreTypeSpec, Package
from repro.hardware.dvfs import OPP, OPPTable
from repro.hardware.gpu import GPU, GPUSpec
from repro.hardware.machine import Machine
from repro.hardware.memory import DRAM, DRAMSpec
from repro.hardware.nic import NIC, NICSpec

__all__ = [
    "SIM4090",
    "SIM3070",
    "LITTLE_CORE",
    "BIG_CORE",
    "build_gpu_workstation",
    "build_big_little",
    "build_server",
]

SIM4090 = GPUSpec(
    name="sim4090",
    e_instruction=1.5e-11,
    e_l1_wavefront=3.0e-11,
    e_l2_sector=1.0e-10,
    e_vram_sector=6.0e-9,
    e_vram_row_activate=1.0e-9,
    e_kernel_launch=5.0e-6,
    p_static_w=55.0,
    thermal_r=0.08,
    thermal_c=500.0,
    leakage_coeff=0.0015,
    instr_rate=2.0e13,
    l1_rate=8.0e12,
    l2_rate=1.6e11,
    vram_rate=3.15e10,
    kernel_launch_latency=5.0e-6,
    row_miss_fraction_default=0.04,
)

SIM3070 = GPUSpec(
    name="sim3070",
    e_instruction=2.5e-11,
    e_l1_wavefront=5.0e-11,
    e_l2_sector=1.6e-10,
    e_vram_sector=8.0e-9,
    e_vram_row_activate=1.6e-8,
    e_kernel_launch=8.0e-6,
    p_static_w=32.0,
    thermal_r=0.15,
    thermal_c=250.0,
    leakage_coeff=0.005,
    instr_rate=5.0e12,
    l1_rate=2.5e12,
    l2_rate=6.0e10,
    vram_rate=1.4e10,
    kernel_launch_latency=8.0e-6,
    row_miss_fraction_default=0.06,
)

LITTLE_CORE = CoreTypeSpec(
    name="little",
    sleep_power_w=0.001,
    opp_table=OPPTable([
        OPP(frequency_hz=0.6e9, capacity=120, power_active_w=0.07,
            power_idle_w=0.004),
        OPP(frequency_hz=1.0e9, capacity=200, power_active_w=0.14,
            power_idle_w=0.006),
        OPP(frequency_hz=1.4e9, capacity=280, power_active_w=0.26,
            power_idle_w=0.009),
        OPP(frequency_hz=1.8e9, capacity=360, power_active_w=0.45,
            power_idle_w=0.012),
    ]),
)

BIG_CORE = CoreTypeSpec(
    name="big",
    sleep_power_w=0.006,
    opp_table=OPPTable([
        # Big cores are leaky: even the lowest OPP pays a wide, hot
        # microarchitecture, so their Joules-per-capacity never approach a
        # LITTLE core's (the asymmetry EAS exists to exploit).
        OPP(frequency_hz=0.8e9, capacity=290, power_active_w=0.55,
            power_idle_w=0.065),
        OPP(frequency_hz=1.4e9, capacity=512, power_active_w=1.05,
            power_idle_w=0.085),
        OPP(frequency_hz=2.0e9, capacity=730, power_active_w=1.90,
            power_idle_w=0.110),
        OPP(frequency_hz=2.4e9, capacity=880, power_active_w=2.70,
            power_idle_w=0.130),
        OPP(frequency_hz=2.8e9, capacity=1024, power_active_w=3.60,
            power_idle_w=0.155),
    ]),
)


def build_gpu_workstation(spec: GPUSpec, name: str | None = None) -> Machine:
    """A machine with one GPU and host DRAM — the §5 testbed."""
    machine = Machine(name if name is not None else f"{spec.name}-workstation")
    machine.add(GPU("gpu0", spec))
    machine.add(DRAM("dram0", DRAMSpec()))
    return machine


def build_big_little(n_little: int = 4, n_big: int = 4,
                     name: str = "big-little") -> Machine:
    """A big.LITTLE machine — the EAS motivating platform.

    LITTLE cores share one package, big cores another, so package static
    power and thermal coupling follow the usual cluster layout.
    """
    machine = Machine(name)
    little_pkg = machine.add(Package("pkg-little", static_active_w=0.5,
                                     static_idle_w=0.05))
    big_pkg = machine.add(Package("pkg-big", static_active_w=1.4,
                                  static_idle_w=0.12))
    for index in range(n_little):
        machine.add(Core(f"little{index}", LITTLE_CORE, little_pkg))
    for index in range(n_big):
        machine.add(Core(f"big{index}", BIG_CORE, big_pkg))
    machine.add(DRAM("dram0", DRAMSpec()))
    return machine


def build_server(name: str = "server", n_cores: int = 8,
                 with_nic: bool = True) -> Machine:
    """A homogeneous server node (used by cluster and web-service sims)."""
    machine = Machine(name)
    package = machine.add(Package("pkg0", static_active_w=18.0,
                                  static_idle_w=4.0))
    for index in range(n_cores):
        machine.add(Core(f"cpu{index}", BIG_CORE, package))
    machine.add(DRAM("dram0", DRAMSpec(p_refresh_w=2.5)))
    if with_nic:
        machine.add(NIC("nic0", NICSpec(name="10gbe", e_per_byte_tx=2e-9,
                                        e_per_byte_rx=1.5e-9, e_wake=0.0,
                                        wake_latency=0.0, p_idle_w=4.0,
                                        p_off_w=0.5, bandwidth_bytes=1.25e9)))
    return machine
