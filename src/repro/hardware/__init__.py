"""Simulated hardware substrate: components, ledger, CPU, GPU, DRAM, NIC."""

from repro.hardware.battery import Battery, BatterySpec
from repro.hardware.component import Component
from repro.hardware.cpu import Core, CoreTypeSpec, Package
from repro.hardware.dvfs import (
    OPP,
    Governor,
    OPPTable,
    PerformanceGovernor,
    PowersaveGovernor,
    SchedutilGovernor,
)
from repro.hardware.gpu import GPU, GPUCounters, GPUSpec, KernelProfile
from repro.hardware.ledger import EnergyLedger, EnergyRecord
from repro.hardware.machine import Machine
from repro.hardware.memory import DRAM, DRAMSpec
from repro.hardware.nic import NIC, NICSpec
from repro.hardware.storage import SSD, SSDSpec
from repro.hardware.profiles import (
    BIG_CORE,
    LITTLE_CORE,
    SIM3070,
    SIM4090,
    build_big_little,
    build_gpu_workstation,
    build_server,
)
from repro.hardware.thermal import LeakageModel, ThermalNode

__all__ = [
    "Component", "EnergyLedger", "EnergyRecord", "Machine",
    "OPP", "OPPTable", "Governor", "PerformanceGovernor",
    "PowersaveGovernor", "SchedutilGovernor",
    "CoreTypeSpec", "Package", "Core",
    "GPU", "GPUSpec", "GPUCounters", "KernelProfile",
    "DRAM", "DRAMSpec", "NIC", "NICSpec", "SSD", "SSDSpec",
    "Battery", "BatterySpec",
    "ThermalNode", "LeakageModel",
    "SIM4090", "SIM3070", "LITTLE_CORE", "BIG_CORE",
    "build_gpu_workstation", "build_big_little", "build_server",
]
