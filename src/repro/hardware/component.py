"""Base class for simulated energy-consuming hardware components.

A component belongs to a :class:`~repro.hardware.machine.Machine`, shares
the machine's clock and writes its energy into the machine's ledger.  Two
kinds of energy are accounted:

* **activity energy** — logged explicitly by subclasses when work happens
  (:meth:`Component.log_activity`);
* **static energy** — integrated by the machine clock: every time the
  machine advances, each component logs ``static_power() * dt``
  (:meth:`Component.on_advance`).  Subclasses with temperature-dependent
  leakage override :meth:`static_power`.
"""

from __future__ import annotations

from repro.core.errors import HardwareError
from repro.hardware.ledger import EnergyLedger, EnergyRecord

__all__ = ["Component"]


class Component:
    """A named energy consumer attached to a machine."""

    def __init__(self, name: str, domain: str = "board") -> None:
        if not name:
            raise HardwareError("a component needs a non-empty name")
        self.name = name
        self.domain = domain
        self._ledger: EnergyLedger | None = None
        self._machine = None

    # -- wiring ------------------------------------------------------------
    def attach(self, machine) -> None:
        """Called by the machine when the component is added."""
        self._machine = machine
        self._ledger = machine.ledger

    @property
    def machine(self):
        """The owning machine (raises if unattached)."""
        if self._machine is None:
            raise HardwareError(f"component {self.name!r} is not attached to "
                                f"a machine")
        return self._machine

    @property
    def now(self) -> float:
        """The machine clock."""
        return self.machine.now

    # -- accounting ----------------------------------------------------------
    def log_activity(self, t_start: float, t_end: float, joules: float,
                     tag: str = "activity") -> None:
        """Account dynamic energy over an interval."""
        if self._ledger is None:
            raise HardwareError(f"component {self.name!r} is not attached to "
                                f"a machine")
        self._ledger.log(EnergyRecord(self.name, self.domain, t_start, t_end,
                                      joules, tag))

    def static_power(self) -> float:
        """Static/idle power draw in Watts at this instant.

        The default component draws nothing when idle; subclasses with
        leakage override this (possibly temperature-dependent).
        """
        return 0.0

    def on_advance(self, t_start: float, t_end: float) -> None:
        """Machine-clock hook: account static energy over ``[t_start, t_end]``.

        Subclasses needing finer behaviour (thermal integration, state
        machines) extend this; they must call ``super().on_advance`` or
        account static energy themselves.
        """
        dt = t_end - t_start
        if dt <= 0:
            return
        power = self.static_power()
        if power > 0:
            self.log_activity(t_start, t_end, power * dt, tag="static")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
