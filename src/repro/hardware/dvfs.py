"""DVFS operating performance points (OPPs) and frequency governors.

Models the voltage/frequency scaling that makes CPU energy behaviour
non-linear: each :class:`OPP` pairs a clock frequency with the core's
active and idle power at that point (power grows roughly with ``f * V^2``,
and voltage must rise with frequency, so the energy *per cycle* is far
higher at the top OPPs — the race-to-idle vs pace-to-deadline trade-off
schedulers navigate).

The table and capacity conventions follow the Linux Energy-Aware
Scheduler's energy model: each OPP has a *capacity* (work per second,
normalised so the biggest core's top OPP is 1024, as in the kernel), and
a core's utilisation is expressed in the same scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import HardwareError

__all__ = ["OPP", "OPPTable", "Governor", "PerformanceGovernor",
           "PowersaveGovernor", "SchedutilGovernor"]

#: The Linux convention: the largest core's top OPP has this capacity.
MAX_CAPACITY = 1024


@dataclass(frozen=True)
class OPP:
    """One operating performance point of a core."""

    frequency_hz: float
    capacity: float          # work rate in capacity units (<= MAX_CAPACITY)
    power_active_w: float    # full-throttle power at this OPP
    power_idle_w: float      # clock-gated idle power at this OPP

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise HardwareError(f"OPP frequency must be > 0, got {self.frequency_hz}")
        if not 0 < self.capacity <= MAX_CAPACITY:
            raise HardwareError(
                f"OPP capacity must be in (0, {MAX_CAPACITY}], got {self.capacity}")
        if self.power_active_w < self.power_idle_w:
            raise HardwareError("active power cannot be below idle power")

    @property
    def energy_per_capacity_second(self) -> float:
        """Joules to deliver one capacity-unit-second of work at this OPP.

        The EAS-style efficiency metric: lower is more efficient.
        """
        return self.power_active_w / self.capacity

    def scaled(self, power_factor: float) -> "OPP":
        """This OPP with both power rails scaled by ``power_factor``.

        The DVFS drift seam: an aged or hot part delivers the same
        frequency/capacity at higher power, so drift scenarios pin cores
        to a scaled table rather than mutating the frozen spec.
        """
        if power_factor < 0:
            raise HardwareError(
                f"power factor must be >= 0, got {power_factor}")
        return OPP(self.frequency_hz, self.capacity,
                   self.power_active_w * power_factor,
                   self.power_idle_w * power_factor)


class OPPTable:
    """The ordered list of OPPs a core type supports (ascending frequency)."""

    def __init__(self, opps: list[OPP]) -> None:
        if not opps:
            raise HardwareError("an OPP table needs at least one OPP")
        ordered = sorted(opps, key=lambda opp: opp.frequency_hz)
        for lower, higher in zip(ordered, ordered[1:]):
            if higher.capacity < lower.capacity:
                raise HardwareError("OPP capacity must be non-decreasing in "
                                    "frequency")
        self._opps = ordered

    def __len__(self) -> int:
        return len(self._opps)

    def __getitem__(self, index: int) -> OPP:
        return self._opps[index]

    def __iter__(self):
        return iter(self._opps)

    @property
    def min_opp(self) -> OPP:
        """The lowest-frequency OPP."""
        return self._opps[0]

    @property
    def max_opp(self) -> OPP:
        """The highest-frequency OPP."""
        return self._opps[-1]

    @property
    def max_capacity(self) -> float:
        """The capacity at the top OPP."""
        return self._opps[-1].capacity

    def scaled(self, power_factor: float) -> "OPPTable":
        """A table with every OPP's power scaled by ``power_factor``."""
        return OPPTable([opp.scaled(power_factor) for opp in self._opps])

    def lowest_fitting(self, utilization: float) -> OPP:
        """The most efficient OPP whose capacity covers ``utilization``.

        This is the schedutil policy: run as slowly as the load allows.
        Falls back to the top OPP when even it cannot fit the load.
        """
        for opp in self._opps:
            if opp.capacity >= utilization:
                return opp
        return self._opps[-1]

    def index_of(self, opp: OPP) -> int:
        """Position of an OPP in the table."""
        for index, candidate in enumerate(self._opps):
            if candidate == opp:
                return index
        raise HardwareError(f"OPP {opp} is not in this table")


class Governor:
    """Strategy choosing the OPP for a given core utilisation."""

    name = "governor"

    def select(self, table: OPPTable, utilization: float) -> OPP:
        """Pick an OPP for a core whose load is ``utilization`` capacity units."""
        raise NotImplementedError


class PerformanceGovernor(Governor):
    """Always run at the top OPP (race to idle)."""

    name = "performance"

    def select(self, table: OPPTable, utilization: float) -> OPP:
        return table.max_opp


class PowersaveGovernor(Governor):
    """Always run at the bottom OPP."""

    name = "powersave"

    def select(self, table: OPPTable, utilization: float) -> OPP:
        return table.min_opp


class SchedutilGovernor(Governor):
    """Pick the lowest OPP that fits the load with headroom.

    Mirrors the kernel's schedutil: request capacity ``util * 1.25`` so
    transient load growth does not immediately saturate the core.
    """

    name = "schedutil"

    def __init__(self, headroom: float = 1.25) -> None:
        if headroom < 1.0:
            raise HardwareError(f"headroom must be >= 1, got {headroom}")
        self.headroom = headroom

    def select(self, table: OPPTable, utilization: float) -> OPP:
        return table.lowest_fitting(utilization * self.headroom)
