"""Simulated CPU: big.LITTLE cores, DVFS, shared package power.

The CPU model reproduces the effects the paper's motivation leans on:

* **Asymmetric cores** (§1, Linux EAS): big cores finish faster but burn
  more Joules per unit of work at the top OPPs; LITTLE cores are slower
  but more efficient.  Work is measured in *capacity-seconds* (the EAS
  convention, see :mod:`repro.hardware.dvfs`).
* **Shared package power** (§2): the package draws static power while any
  core is awake, so the *marginal* energy of placing work on an
  already-busy package is lower than waking an idle one — scheduling a
  task to a busy core can be energy-optimal.
* **Thermal coupling** (§6): all cores of a package heat one shared
  thermal node; package leakage rises with temperature.

Cores execute *serially* (one task at a time each) with explicit start
times, so event-driven scheduler simulations control placement and timing;
sequential callers can use :meth:`Core.run`, which advances the machine
clock itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import HardwareError
from repro.hardware.component import Component
from repro.hardware.dvfs import OPP, Governor, OPPTable
from repro.hardware.thermal import LeakageModel, ThermalNode

__all__ = ["CoreTypeSpec", "Package", "Core"]


@dataclass(frozen=True)
class CoreTypeSpec:
    """A core microarchitecture: its name, OPP table and sleep power.

    ``sleep_power_w`` is the deep-C-state draw of a core that had no work
    at all during an accounting interval — cpuidle power-gates it.  A core
    that ran anything during the interval pays its OPP's clock-gated idle
    power for the remainder instead.
    """

    name: str
    opp_table: OPPTable
    sleep_power_w: float = 0.002

    @property
    def max_capacity(self) -> float:
        """Capacity at the top OPP."""
        return self.opp_table.max_capacity


class Package(Component):
    """A CPU package: shared static power, shared thermal node.

    Static power has three regimes:

    * ``off`` — the package is power-gated and draws nothing;
    * idle — no core is busy: ``static_idle_w`` (retention power);
    * active — at least one core is busy: ``static_active_w`` scaled by
      the thermal leakage factor.
    """

    def __init__(self, name: str, static_active_w: float = 1.2,
                 static_idle_w: float = 0.15,
                 thermal: ThermalNode | None = None,
                 leakage: LeakageModel | None = None) -> None:
        super().__init__(name, domain="cpu")
        if static_idle_w > static_active_w:
            raise HardwareError("idle static power cannot exceed active")
        self.static_active_w = float(static_active_w)
        self.static_idle_w = float(static_idle_w)
        self.thermal = thermal if thermal is not None else ThermalNode(
            r_thermal=2.0, c_thermal=10.0)
        self.leakage = leakage if leakage is not None else LeakageModel(0.004)
        self.cores: list["Core"] = []
        self.powered = True
        #: Optional :class:`repro.calibration.ComponentDrift` (duck-typed):
        #: when set, static power and the ambient temperature drift.
        self.drift = None

    # -- power states ---------------------------------------------------------
    def set_powered(self, powered: bool) -> None:
        """Gate or ungate the whole package (deep idle)."""
        self.powered = powered

    def any_core_busy(self, at_time: float) -> bool:
        """True when at least one core has work at ``at_time``."""
        return any(core.busy_until > at_time for core in self.cores)

    @property
    def temperature(self) -> float:
        """Package temperature in Celsius."""
        return self.thermal.temperature

    # -- accounting ----------------------------------------------------------
    def static_power(self) -> float:
        if not self.powered:
            return 0.0
        base = (self.static_active_w if self.any_core_busy(self.now)
                else self.static_idle_w)
        power = base * self.leakage.factor(self.thermal.temperature)
        if self.drift is not None:
            power *= self.drift.static_factor(self.now)
        return power

    def on_advance(self, t_start: float, t_end: float) -> None:
        dt = t_end - t_start
        if dt <= 0:
            return
        if self.drift is not None:
            self.drift.advance(self.thermal, t_start)
        if self.powered:
            # Active whenever any core had work during the interval (a core
            # whose task just finished at t_end counts: it ran in [t0, t1]).
            busy = any(core.busy_until > t_start for core in self.cores)
            base = self.static_active_w if busy else self.static_idle_w
            power = base * self.leakage.factor(self.thermal.temperature)
            if self.drift is not None:
                power *= self.drift.static_factor(t_start)
            joules = power * dt
            if joules > 0:
                self.log_activity(t_start, t_end, joules, tag="static")
                self.thermal.deposit(joules)
        self.thermal.step(dt)


class Core(Component):
    """One CPU core, attached to a package, running tasks serially."""

    def __init__(self, name: str, spec: CoreTypeSpec, package: Package) -> None:
        super().__init__(name, domain="cpu")
        self.spec = spec
        self.package = package
        package.cores.append(self)
        self._opp: OPP = spec.opp_table.min_opp
        self.busy_until = 0.0
        #: Optional :class:`repro.calibration.ComponentDrift` (duck-typed):
        #: when set, per-work dynamic energy drifts over machine time.
        self.drift = None

    # -- DVFS ------------------------------------------------------------------
    @property
    def opp(self) -> OPP:
        """The core's current operating point."""
        return self._opp

    def set_opp(self, opp: OPP) -> None:
        """Pin the core to an OPP."""
        self.spec.opp_table.index_of(opp)  # validates membership
        self._opp = opp

    def apply_governor(self, governor: Governor, utilization: float) -> OPP:
        """Let a governor pick the OPP for the given load."""
        self._opp = governor.select(self.spec.opp_table, utilization)
        return self._opp

    # -- execution ----------------------------------------------------------
    def duration_of(self, work: float, opp: OPP | None = None) -> float:
        """Seconds to execute ``work`` capacity-seconds at an OPP."""
        if work < 0:
            raise HardwareError(f"work must be >= 0, got {work}")
        chosen = opp if opp is not None else self._opp
        return work / chosen.capacity

    def energy_of(self, work: float, opp: OPP | None = None) -> float:
        """Extra Joules (above idle) to execute ``work`` at an OPP."""
        chosen = opp if opp is not None else self._opp
        duration = self.duration_of(work, chosen)
        joules = (chosen.power_active_w - chosen.power_idle_w) * duration
        if self.drift is not None:
            joules *= self.drift.energy_factor(self.now)
        return joules

    def execute_at(self, t_start: float, work: float, tag: str = "task"
                   ) -> tuple[float, float]:
        """Run ``work`` capacity-seconds starting at ``t_start``.

        Returns ``(t_end, joules_extra)``.  The energy logged here is the
        *extra* power above idle; idle power is accounted continuously as
        static energy by :meth:`static_power`, so ledger totals conserve.
        Raises when the core is still busy at ``t_start``.
        """
        if not self.package.powered:
            raise HardwareError(
                f"core {self.name!r} cannot execute: package "
                f"{self.package.name!r} is power-gated")
        if t_start < self.busy_until:
            raise HardwareError(
                f"core {self.name!r} is busy until t={self.busy_until} s, "
                f"cannot start at t={t_start} s")
        duration = self.duration_of(work)
        joules = self.energy_of(work)
        t_end = t_start + duration
        self.log_activity(t_start, t_end, joules, tag=tag)
        self.package.thermal.deposit(joules)
        self.busy_until = t_end
        return t_end, joules

    def run(self, work: float, tag: str = "task") -> tuple[float, float]:
        """Sequential convenience: execute now and advance the machine clock."""
        start = max(self.now, self.busy_until)
        if start > self.now:
            self.machine.advance_to(start)
        t_end, joules = self.execute_at(start, work, tag=tag)
        self.machine.advance_to(t_end)
        return t_end, joules

    # -- accounting ----------------------------------------------------------
    def static_power(self) -> float:
        if not self.package.powered:
            return 0.0
        if self.busy_until <= self.now:
            return self.spec.sleep_power_w
        return self._opp.power_idle_w

    def on_advance(self, t_start: float, t_end: float) -> None:
        dt = t_end - t_start
        if dt <= 0:
            return
        if not self.package.powered:
            return
        # A core untouched for the whole interval sleeps in a deep
        # C-state; one that ran at all keeps its OPP's idle power.
        if self.busy_until <= t_start:
            power = self.spec.sleep_power_w
        else:
            power = self._opp.power_idle_w
        if power > 0:
            joules = power * dt
            self.log_activity(t_start, t_end, joules, tag="static")
            self.package.thermal.deposit(joules)
