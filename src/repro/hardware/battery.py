"""A battery model for energy-constrained devices.

§1: "devices that rely on batteries — ranging from tiny cyber-physical
systems to electric vehicles and drones — are playing an increasingly
central role in modern life."  For these devices energy clarity is not
an efficiency nicety but a feasibility question: *can this mission
complete on the charge I have?*  The battery model supplies the budget
side of that question; the mission's energy interface supplies the
demand side (:mod:`repro.apps.drone`).

The model covers the first-order effects that matter for planning:

* usable capacity (Wh) with a reserve floor (landing reserve, shutdown
  margin);
* discharge inefficiency that grows with draw (internal resistance —
  high-power flight legs cost more charge than their mechanical energy);
* capacity fade with full-cycle count (long-horizon planning).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import HardwareError
from repro.core.units import Energy

__all__ = ["BatterySpec", "Battery"]


@dataclass(frozen=True)
class BatterySpec:
    """Electrical characteristics of a battery pack."""

    name: str = "4s-lipo"
    capacity_wh: float = 50.0
    nominal_voltage: float = 14.8
    internal_resistance_ohm: float = 0.04
    reserve_fraction: float = 0.15     # never plan below this
    fade_per_cycle: float = 0.0004     # capacity lost per full cycle

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0 or self.nominal_voltage <= 0:
            raise HardwareError(f"battery {self.name!r} needs positive "
                                f"capacity and voltage")
        if self.internal_resistance_ohm < 0:
            raise HardwareError("internal resistance must be >= 0")
        if not 0.0 <= self.reserve_fraction < 1.0:
            raise HardwareError("reserve fraction must be in [0, 1)")
        if not 0.0 <= self.fade_per_cycle < 0.01:
            raise HardwareError("fade per cycle must be in [0, 0.01)")


class Battery:
    """A discharging battery with draw-dependent losses."""

    def __init__(self, spec: BatterySpec | None = None,
                 cycles: float = 0.0) -> None:
        self.spec = spec if spec is not None else BatterySpec()
        if cycles < 0:
            raise HardwareError("cycle count must be >= 0")
        self.cycles = float(cycles)
        self._charge_j = self.effective_capacity().as_joules

    # -- capacity ----------------------------------------------------------
    def effective_capacity(self) -> Energy:
        """Full capacity after fade, in Energy."""
        fade = max(1.0 - self.spec.fade_per_cycle * self.cycles, 0.5)
        return Energy(self.spec.capacity_wh * 3600.0 * fade)

    @property
    def charge(self) -> Energy:
        """Energy remaining right now."""
        return Energy(self._charge_j)

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction of effective capacity."""
        capacity = self.effective_capacity().as_joules
        return self._charge_j / capacity if capacity > 0 else 0.0

    def usable(self) -> Energy:
        """Charge available above the planning reserve."""
        floor = (self.spec.reserve_fraction
                 * self.effective_capacity().as_joules)
        return Energy(max(self._charge_j - floor, 0.0))

    # -- discharge ----------------------------------------------------------
    def loss_factor(self, power_w: float) -> float:
        """Charge drawn per Joule delivered at ``power_w``.

        I²R loss: delivering ``P`` at the pack voltage ``V`` draws
        ``P + I²R`` from the cells with ``I = P / V``.
        """
        if power_w < 0:
            raise HardwareError("power draw must be >= 0")
        if power_w == 0:
            return 1.0
        current = power_w / self.spec.nominal_voltage
        loss = current ** 2 * self.spec.internal_resistance_ohm
        return (power_w + loss) / power_w

    def draw(self, power_w: float, seconds: float) -> Energy:
        """Discharge at ``power_w`` for ``seconds``; returns charge used.

        Raises when the draw would exhaust the pack (brown-out), leaving
        the charge at zero — planners must check :meth:`usable` first,
        which is the entire point of pairing batteries with interfaces.
        """
        if seconds < 0:
            raise HardwareError("duration must be >= 0")
        needed = power_w * seconds * self.loss_factor(power_w)
        if needed > self._charge_j:
            self._charge_j = 0.0
            raise HardwareError(
                f"battery exhausted: needed {needed:.1f} J, had "
                f"{self._charge_j:.1f} J")
        self._charge_j -= needed
        return Energy(needed)

    def recharge(self) -> None:
        """Full recharge; counts one cycle of fade."""
        self.cycles += 1.0
        self._charge_j = self.effective_capacity().as_joules

    def __repr__(self) -> str:
        return (f"Battery({self.spec.name!r}, "
                f"{self.state_of_charge:.0%} of "
                f"{self.effective_capacity()})")
