"""Simulated flash storage (SSD): asymmetric read/write/erase energy.

Flash's energy behaviour is famously non-uniform — reads are cheap,
programs (writes) cost several times more, and background garbage
collection periodically erases blocks at two orders of magnitude the
page cost, *triggered by past write volume* rather than by the current
request.  That makes storage a textbook ECV case: the energy of "write
4 KiB" depends on whether this write tips the GC threshold — state the
input cannot carry.

The component tracks dirty pages and runs GC when the dirty ratio
crosses a threshold, attributing the erase energy to the triggering
write (how a measurement would see it), while
:class:`StorageEnergyInterface` in :mod:`repro.apps` amortises it via a
``gc_triggered`` ECV — the two views divergence testing reconciles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import HardwareError
from repro.hardware.component import Component

__all__ = ["SSDSpec", "SSD"]

PAGE_BYTES = 4096


@dataclass(frozen=True)
class SSDSpec:
    """Energy characteristics of a flash device."""

    name: str = "nvme"
    e_read_page: float = 6e-6       # J per 4 KiB page read
    e_write_page: float = 25e-6     # J per 4 KiB page programmed
    e_erase_block: float = 1.8e-3   # J per block erase
    pages_per_block: int = 256
    p_idle_w: float = 0.05
    gc_dirty_threshold: float = 0.75   # dirty fraction triggering GC
    capacity_blocks: int = 1024
    read_bandwidth: float = 3.0e9      # B/s
    write_bandwidth: float = 1.5e9     # B/s

    def __post_init__(self) -> None:
        if min(self.e_read_page, self.e_write_page, self.e_erase_block,
               self.p_idle_w, self.read_bandwidth,
               self.write_bandwidth) < 0:
            raise HardwareError(f"SSD spec {self.name!r} has negative values")
        if not 0.0 < self.gc_dirty_threshold <= 1.0:
            raise HardwareError("gc_dirty_threshold must be in (0, 1]")
        if self.pages_per_block <= 0 or self.capacity_blocks <= 0:
            raise HardwareError("SSD geometry must be positive")


class SSD(Component):
    """A flash device with write-triggered garbage collection."""

    def __init__(self, name: str, spec: SSDSpec | None = None) -> None:
        super().__init__(name, domain="storage")
        self.spec = spec if spec is not None else SSDSpec()
        self.dirty_pages = 0
        self.pages_read = 0
        self.pages_written = 0
        self.gc_runs = 0

    # -- capacity accounting -------------------------------------------------
    @property
    def total_pages(self) -> int:
        """Device capacity in pages."""
        return self.spec.capacity_blocks * self.spec.pages_per_block

    @property
    def dirty_fraction(self) -> float:
        """Fraction of pages awaiting garbage collection."""
        return self.dirty_pages / self.total_pages

    # -- operations -----------------------------------------------------------
    def read(self, n_bytes: int) -> tuple[float, float]:
        """Read ``n_bytes``; returns (seconds, joules)."""
        if n_bytes < 0:
            raise HardwareError(f"cannot read {n_bytes} bytes")
        pages = -(-n_bytes // PAGE_BYTES)
        joules = pages * self.spec.e_read_page
        duration = n_bytes / self.spec.read_bandwidth
        self.log_activity(self.now, self.now + duration, joules, tag="read")
        self.machine.advance(duration)
        self.pages_read += pages
        return duration, joules

    def write(self, n_bytes: int) -> tuple[float, float]:
        """Write ``n_bytes``; may trigger GC.  Returns (seconds, joules).

        The erase energy lands on the write that crosses the dirty
        threshold — the lumpy behaviour measurements observe.
        """
        if n_bytes < 0:
            raise HardwareError(f"cannot write {n_bytes} bytes")
        pages = -(-n_bytes // PAGE_BYTES)
        joules = pages * self.spec.e_write_page
        duration = n_bytes / self.spec.write_bandwidth
        self.log_activity(self.now, self.now + duration, joules,
                          tag="write")
        self.machine.advance(duration)
        self.pages_written += pages
        self.dirty_pages = min(self.dirty_pages + pages, self.total_pages)
        gc_joules = 0.0
        if self.dirty_fraction >= self.spec.gc_dirty_threshold:
            gc_joules = self._collect_garbage()
        return duration, joules + gc_joules

    def _collect_garbage(self) -> float:
        """Erase every dirty block; returns the Joules spent."""
        blocks = self.dirty_pages // self.spec.pages_per_block
        if blocks == 0:
            return 0.0
        joules = blocks * self.spec.e_erase_block
        # Erase at ~3 ms per block, a typical figure.
        duration = blocks * 0.003
        self.log_activity(self.now, self.now + duration, joules, tag="gc")
        self.machine.advance(duration)
        self.dirty_pages -= blocks * self.spec.pages_per_block
        self.gc_runs += 1
        return joules

    def writes_until_gc(self) -> int:
        """Pages of headroom before the next GC — manager knowledge.

        A storage manager exports this as the basis for the
        ``gc_triggered`` ECV binding: the probability that a given write
        triggers GC is (pages written per request) / headroom.
        """
        threshold_pages = int(self.spec.gc_dirty_threshold
                              * self.total_pages)
        return max(threshold_pages - self.dirty_pages, 0)

    # -- accounting -------------------------------------------------------------
    def static_power(self) -> float:
        return self.spec.p_idle_w
