"""Ground-truth energy accounting for simulated hardware.

Every simulated component writes :class:`EnergyRecord` entries into its
machine's :class:`EnergyLedger` — one record per activity or static-power
interval, with the Joules consumed and the interval it covers.  The ledger
is the *ground truth* of the simulation:

* measurement channels (:mod:`repro.measurement`) expose noisy, quantised,
  coarse views of it (as NVML and RAPL do for real silicon);
* energy interfaces *predict* it;
* divergence between the two is what §4.2's testing workflow flags as an
  energy bug.

Records assume uniform power over their interval, which lets the ledger
answer windowed queries (``energy_between``) and instantaneous power
queries (``power_at``) by pro-rating.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import HardwareError

__all__ = ["EnergyRecord", "EnergyLedger"]


@dataclass(frozen=True)
class EnergyRecord:
    """One accounted interval of energy consumption."""

    component: str
    domain: str
    t_start: float
    t_end: float
    joules: float
    tag: str = ""

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise HardwareError(
                f"energy record for {self.component!r} has inverted interval "
                f"[{self.t_start}, {self.t_end}]")
        if math.isnan(self.joules) or math.isinf(self.joules):
            raise HardwareError(
                f"energy record for {self.component!r} has non-finite energy "
                f"{self.joules} J")
        if self.joules < 0:
            raise HardwareError(
                f"energy record for {self.component!r} has negative energy "
                f"{self.joules} J")

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.t_end - self.t_start

    def overlap_joules(self, t0: float, t1: float) -> float:
        """Energy attributable to the window ``[t0, t1]`` (pro-rated)."""
        if self.duration == 0.0:
            # Instantaneous record: counts if its instant is in the window.
            return self.joules if t0 <= self.t_start <= t1 else 0.0
        overlap = min(self.t_end, t1) - max(self.t_start, t0)
        if overlap <= 0:
            return 0.0
        return self.joules * overlap / self.duration

    @property
    def average_power(self) -> float:
        """Mean power over the interval in Watts (inf for instants)."""
        if self.duration == 0.0:
            return float("inf") if self.joules > 0 else 0.0
        return self.joules / self.duration


class EnergyLedger:
    """Append-only store of energy records with windowed queries."""

    def __init__(self) -> None:
        self._records: list[EnergyRecord] = []
        self._starts: list[float] = []
        self._max_end = 0.0
        self._max_duration = 0.0
        #: Readings rejected by :meth:`log_reading`, per component.
        self.dropped: dict[str, int] = {}

    def log(self, record: EnergyRecord) -> None:
        """Append one record. Records must arrive in start-time order."""
        if self._starts and record.t_start < self._starts[-1]:
            raise HardwareError(
                f"energy records must be appended in start-time order; got "
                f"t_start={record.t_start} after {self._starts[-1]}")
        self._records.append(record)
        self._starts.append(record.t_start)
        self._max_end = max(self._max_end, record.t_end)
        self._max_duration = max(self._max_duration, record.duration)

    def log_reading(self, component: str, domain: str, t_start: float,
                    t_end: float, joules: float, tag: str = ""
                    ) -> EnergyRecord | None:
        """Log a raw meter reading, quarantining garbage instead of raising.

        Real meters occasionally return NaN, negative deltas (counter
        wrap) or inverted timestamps.  :meth:`log` treats those as
        programming errors; this entry point treats them as *data* —
        a bad reading is dropped, counted in :attr:`dropped`, and
        ``None`` is returned so callers can degrade (interpolate, skip)
        rather than crash mid-run.
        """
        try:
            record = EnergyRecord(component=component, domain=domain,
                                  t_start=t_start, t_end=t_end,
                                  joules=joules, tag=tag)
            self.log(record)
        except HardwareError:
            self.dropped[component] = self.dropped.get(component, 0) + 1
            return None
        return record

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def records(self, component: str | None = None,
                domain: str | None = None) -> list[EnergyRecord]:
        """All records, optionally filtered by component and/or domain."""
        selected: Iterable[EnergyRecord] = self._records
        if component is not None:
            selected = (r for r in selected if r.component == component)
        if domain is not None:
            selected = (r for r in selected if r.domain == domain)
        return list(selected)

    def total_joules(self, component: str | None = None,
                     domain: str | None = None) -> float:
        """Total accounted energy, optionally filtered."""
        return sum(r.joules for r in self.records(component, domain))

    def energy_between(self, t0: float, t1: float,
                       component: str | None = None,
                       domain: str | None = None) -> float:
        """Energy attributable to the window ``[t0, t1]``, pro-rated."""
        if t1 < t0:
            raise HardwareError(f"inverted query window [{t0}, {t1}]")
        # Records are start-ordered; those starting after t1 cannot overlap,
        # and none starting before t0 - max_duration can reach into [t0, t1].
        stop = bisect.bisect_right(self._starts, t1)
        begin = bisect.bisect_left(self._starts, t0 - self._max_duration)
        total = 0.0
        for record in self._records[begin:stop]:
            if record.t_end < t0 and record.duration > 0:
                continue
            if component is not None and record.component != component:
                continue
            if domain is not None and record.domain != domain:
                continue
            total += record.overlap_joules(t0, t1)
        return total

    def power_at(self, t: float, component: str | None = None,
                 domain: str | None = None) -> float:
        """Instantaneous power at time ``t`` (sum of covering records)."""
        stop = bisect.bisect_right(self._starts, t)
        power = 0.0
        for record in self._records[:stop]:
            if record.t_end <= t or record.duration == 0.0:
                continue
            if component is not None and record.component != component:
                continue
            if domain is not None and record.domain != domain:
                continue
            power += record.average_power
        return power

    def by_component(self) -> dict[str, float]:
        """Total Joules per component — the attribution breakdown."""
        totals: dict[str, float] = {}
        for record in self._records:
            totals[record.component] = totals.get(record.component, 0.0) + record.joules
        return totals

    def by_tag(self, component: str | None = None) -> dict[str, float]:
        """Total Joules per tag, optionally for a single component."""
        totals: dict[str, float] = {}
        for record in self._records:
            if component is not None and record.component != component:
                continue
            totals[record.tag] = totals.get(record.tag, 0.0) + record.joules
        return totals

    @property
    def horizon(self) -> float:
        """Latest record end time."""
        return self._max_end
