"""Simulated DRAM: per-line access energy plus refresh background power.

Used by the CPU-side applications (web service, cache, schedulers) and by
the RAPL DRAM domain.  Accesses are accounted per 64-byte line; refresh
and self-refresh power accrue as static energy on the machine clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import HardwareError
from repro.hardware.component import Component

__all__ = ["DRAMSpec", "DRAM"]

LINE_BYTES = 64


@dataclass(frozen=True)
class DRAMSpec:
    """Energy characteristics of a DRAM subsystem."""

    name: str = "ddr4"
    e_read_line: float = 15e-9      # J per 64 B line read
    e_write_line: float = 18e-9     # J per 64 B line written
    p_refresh_w: float = 0.8        # background refresh power
    bandwidth_bytes: float = 25e9   # B/s

    def __post_init__(self) -> None:
        if min(self.e_read_line, self.e_write_line, self.p_refresh_w,
               self.bandwidth_bytes) < 0:
            raise HardwareError(f"DRAM spec {self.name!r} has negative values")


class DRAM(Component):
    """A DRAM component accounting access and refresh energy."""

    def __init__(self, name: str, spec: DRAMSpec | None = None) -> None:
        super().__init__(name, domain="dram")
        self.spec = spec if spec is not None else DRAMSpec()
        self.lines_read = 0
        self.lines_written = 0

    def access_energy(self, bytes_read: float = 0.0,
                      bytes_written: float = 0.0) -> float:
        """Joules for an access of the given size (whole lines)."""
        if bytes_read < 0 or bytes_written < 0:
            raise HardwareError("access sizes must be >= 0")
        read_lines = -(-int(bytes_read) // LINE_BYTES) if bytes_read else 0
        write_lines = -(-int(bytes_written) // LINE_BYTES) if bytes_written else 0
        return (read_lines * self.spec.e_read_line
                + write_lines * self.spec.e_write_line)

    def access_duration(self, bytes_read: float = 0.0,
                        bytes_written: float = 0.0) -> float:
        """Seconds the access occupies the memory bus."""
        return (bytes_read + bytes_written) / self.spec.bandwidth_bytes

    def access_at(self, t_start: float, bytes_read: float = 0.0,
                  bytes_written: float = 0.0, tag: str = "access"
                  ) -> tuple[float, float]:
        """Account an access at an explicit time; returns (t_end, joules)."""
        joules = self.access_energy(bytes_read, bytes_written)
        duration = self.access_duration(bytes_read, bytes_written)
        self.log_activity(t_start, t_start + duration, joules, tag=tag)
        self.lines_read += -(-int(bytes_read) // LINE_BYTES) if bytes_read else 0
        self.lines_written += (-(-int(bytes_written) // LINE_BYTES)
                               if bytes_written else 0)
        return t_start + duration, joules

    def access(self, bytes_read: float = 0.0, bytes_written: float = 0.0,
               tag: str = "access") -> tuple[float, float]:
        """Sequential convenience: access now, advancing the machine clock."""
        t_end, joules = self.access_at(self.now, bytes_read, bytes_written, tag)
        self.machine.advance_to(t_end)
        return t_end, joules

    def static_power(self) -> float:
        return self.spec.p_refresh_w
