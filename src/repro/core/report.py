"""Human-readable rendering of interfaces, predictions and comparisons.

Energy interfaces are programs meant to be *read* (§3): "a developer can
read this program to understand and reason about the energy behavior of
the resource".  :func:`describe_interface` renders an interface the way a
developer would want to see it — its ECVs with their distributions and the
actual Python source of its energy methods.

The module also provides the plain-text tables used by the examples and
the benchmark harness to report paper-style results.
"""

from __future__ import annotations

import inspect
import textwrap
from typing import Any, Sequence

from repro.core.ecv import (
    BernoulliECV,
    CategoricalECV,
    ContinuousECV,
    FixedECV,
    UniformIntECV,
)
from repro.core.interface import EnergyInterface

__all__ = ["describe_interface", "format_table", "format_comparison",
           "render_stack"]


def _describe_ecv(ecv: Any) -> str:
    if isinstance(ecv, BernoulliECV):
        spec = f"Bernoulli(p={ecv.p:g})"
    elif isinstance(ecv, CategoricalECV):
        support = ", ".join(f"{value!r}:{p:g}" for value, p in ecv.support())
        spec = f"Categorical({support})"
    elif isinstance(ecv, FixedECV):
        spec = f"Fixed({ecv.value!r})"
    elif isinstance(ecv, UniformIntECV):
        spec = f"UniformInt[{ecv.low}, {ecv.high}]"
    elif isinstance(ecv, ContinuousECV):
        spec = f"Continuous[{ecv.low:g}, {ecv.high:g}]"
    else:
        spec = type(ecv).__name__
    if ecv.description:
        return f"{ecv.name} ~ {spec}  # {ecv.description}"
    return f"{ecv.name} ~ {spec}"


def _method_source(method: Any) -> str:
    try:
        source = inspect.getsource(method)
    except (OSError, TypeError):
        doc = inspect.getdoc(method) or "(source unavailable)"
        return f"# {doc}"
    return textwrap.dedent(source).rstrip()


def describe_interface(interface: EnergyInterface,
                       include_source: bool = True) -> str:
    """Render an interface: header, ECV declarations, energy-method source."""
    lines = [f"energy interface {interface.name!r} "
             f"({type(interface).__name__})"]
    doc = inspect.getdoc(type(interface))
    if doc:
        first_line = doc.splitlines()[0]
        lines.append(f"  {first_line}")
    declarations = interface.ecv_declarations
    if declarations:
        lines.append("  ECVs:")
        for name in sorted(declarations):
            lines.append(f"    {_describe_ecv(declarations[name])}")
    methods = [name for name in dir(interface)
               if name.startswith("E_") and callable(getattr(interface, name))]
    if methods:
        lines.append("  energy methods:")
        for name in sorted(methods):
            if include_source:
                source = _method_source(getattr(interface, name))
                lines.append(textwrap.indent(source, "    "))
            else:
                signature = inspect.signature(getattr(interface, name))
                lines.append(f"    {name}{signature}")
    return "\n".join(lines)


def render_stack(stack: Any) -> str:
    """Render a Fig.-2-style view of a system stack.

    Layers top-down (as the figure draws them), each with its managers,
    their resources, and the ECVs each exported interface carries —
    the at-a-glance answer to "who composes what for whom".
    """
    lines: list[str] = [f"system stack ({len(stack.layers)} layers, "
                        f"top-down)"]
    for layer in reversed(stack.layers):
        lines.append(f"[{layer.name}]")
        for manager in layer.managers:
            bindings = manager.known_bindings()
            binding_note = (f" binds {sorted(bindings)}" if bindings
                            else "")
            lines.append(f"  manager {manager.name}{binding_note}")
            for resource in manager.resources:
                interface = resource.energy_interface
                ecvs = sorted(interface.ecv_declarations)
                ecv_note = f" ECVs={ecvs}" if ecvs else ""
                lines.append(f"    resource {resource.name} -> "
                             f"{type(interface).__name__}{ecv_note}")
                if resource.description:
                    lines.append(f"      # {resource.description}")
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render a plain-text table with aligned columns."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def render_row(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(width)
                         for value, width in zip(values, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append(render_row(["-" * width for width in widths]))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def format_comparison(label: str, predicted_joules: float,
                      measured_joules: float) -> str:
    """One-line prediction-vs-measurement comparison with relative error."""
    if measured_joules != 0:
        error = abs(predicted_joules - measured_joules) / abs(measured_joules)
        error_text = f"{100 * error:.2f}%"
    else:
        error_text = "n/a"
    return (f"{label}: predicted {predicted_joules:.6g} J, "
            f"measured {measured_joules:.6g} J, error {error_text}")
