"""Energy interfaces: executable programs that compute energy usage.

An energy interface (§3 of the paper) is *a program* that takes the same
input as the module it summarises (or an abstraction of that input) and
returns the energy the module would consume.  Interfaces read
energy-critical variables (ECVs) for state that is not part of the input;
with ECVs bound to distributions the return value becomes a probability
distribution.

This module provides:

:class:`EnergyInterface`
    Base class.  Subclasses write ordinary Python methods (conventionally
    named ``E_<operation>``) that return :class:`~repro.core.units.Energy`,
    a plain number of Joules, an
    :class:`~repro.core.units.AbstractEnergy`, or an
    :class:`~repro.core.distributions.EnergyDistribution`.  Inside a
    method, ``self.ecv("name")`` reads an ECV.

Evaluation modes (:meth:`EnergyInterface.evaluate`)
    * ``"expected"`` — the mean over ECV randomness,
    * ``"distribution"`` — the full mixture distribution,
    * ``"worst"`` — the supremum over all ECV values (contract reasoning),
    * ``"best"`` — the infimum,
    * ``"sample"`` — one Monte-Carlo draw.

The evaluator *re-executes* the interface once per ECV-read trace,
enumerating the tree of discrete ECV choices lazily.  This handles nested
interfaces and data-dependent ECV reads with no cooperation from the
interface author: interface code just reads ECVs as if they were plain
values, exactly like Fig. 1 of the paper.  Interfaces must be
deterministic given their inputs and ECV values.

If any *continuous* ECV is read, exact enumeration is impossible and the
evaluator transparently falls back to Monte-Carlo sampling (worst-case
mode instead uses the interval endpoints, which is exact for interfaces
monotone in the ECV — true of all models in this repository).
"""

from __future__ import annotations

import contextvars
import functools
import inspect
import math
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

from repro.core.distributions import (
    Discrete,
    EnergyDistribution,
    Mixture,
    PointMass,
    as_distribution,
)
from repro.core.ecv import ECV, ECVEnvironment
from repro.core.errors import EvaluationError, UnknownECVError
from repro.core.units import AbstractEnergy, Energy

if TYPE_CHECKING:
    from repro.core.session import EvalSession

__all__ = [
    "EnergyInterface",
    "EnergyCall",
    "TraceOutcome",
    "evaluate",
    "DEFAULT_MAX_TRACES",
]

#: The budget defaults moved to :class:`repro.core.session.EvalSession`
#: (the single source); these module attributes remain as deprecated
#: aliases served by the module-level ``__getattr__`` below.
_MOVED_DEFAULTS = {
    "DEFAULT_MAX_TRACES": "DEFAULT_MAX_TRACES",
    "DEFAULT_MC_SAMPLES": "DEFAULT_N_SAMPLES",
}


def __getattr__(name: str) -> Any:
    if name in _MOVED_DEFAULTS:
        replacement = _MOVED_DEFAULTS[name]
        warnings.warn(
            f"repro.core.interface.{name} is deprecated; use "
            f"repro.core.session.EvalSession.{replacement} instead",
            DeprecationWarning, stacklevel=2)
        from repro.core.session import EvalSession
        return getattr(EvalSession, replacement)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


_ACTIVE_CONTEXT: contextvars.ContextVar["_BaseContext | None"] = (
    contextvars.ContextVar("repro_energy_eval_context", default=None))

#: The session driving the current evaluation, if any.  Set by
#: :meth:`repro.core.session.EvalSession._run` for the duration of an
#: evaluation so nested interface calls join the same pipeline
#: (memoization, span recording, the session's RNG).
_ACTIVE_SESSION: contextvars.ContextVar["EvalSession | None"] = (
    contextvars.ContextVar("repro_energy_eval_session", default=None))


def active_session() -> "EvalSession | None":
    """The :class:`~repro.core.session.EvalSession` currently evaluating."""
    return _ACTIVE_SESSION.get()


@dataclass(frozen=True)
class TraceOutcome:
    """One enumerated ECV trace: its probability, outcome and assignments."""

    probability: float
    value: Any
    assignments: Mapping[str, Any]


class _NotEnumerable(Exception):
    """Internal: a continuous ECV was read during exact enumeration."""

    def __init__(self, ecv_name: str) -> None:
        super().__init__(ecv_name)
        self.ecv_name = ecv_name


class _BaseContext:
    """Shared resolution logic for all evaluation contexts."""

    def __init__(self, env: ECVEnvironment,
                 session: "EvalSession | None" = None) -> None:
        self.env = env
        self.session = session
        self.assignments: dict[str, Any] = {}

    def _record(self, qualified: str, value: Any) -> None:
        self.assignments[qualified] = value
        if self.session is not None:
            self.session._on_ecv_read(qualified, value)

    def _resolve(self, owner: "EnergyInterface", name: str) -> ECV:
        qualified = f"{owner.name}.{name}"
        bound = self.env.lookup(qualified, name)
        if bound is not None:
            return bound
        declared = owner.declared_ecv(name)
        if declared is not None:
            return declared
        raise UnknownECVError(
            f"interface {owner.name!r} read undeclared, unbound ECV {name!r}; "
            f"declare it with declare_ecv() or bind it in the environment")

    def read(self, owner: "EnergyInterface", name: str) -> Any:
        raise NotImplementedError


class _TraceContext(_BaseContext):
    """Exact enumeration context: replays forced choices, records branches."""

    def __init__(self, env: ECVEnvironment,
                 forced: list[tuple[str, int]],
                 worst_case: bool,
                 session: "EvalSession | None" = None) -> None:
        super().__init__(env, session)
        self._forced = forced
        self._worst_case = worst_case
        self._choices: list[tuple[str, int]] = []
        self.probability = 1.0
        self.unexplored: list[list[tuple[str, int]]] = []

    def _support(self, ecv: ECV) -> list[tuple[Any, float]]:
        if self._worst_case:
            return [(value, 1.0) for value in ecv.extreme_values()]
        support = ecv.support()
        if support is None:
            raise _NotEnumerable(ecv.name)
        return support

    def read(self, owner: "EnergyInterface", name: str) -> Any:
        ecv = self._resolve(owner, name)
        support = self._support(ecv)
        position = len(self._choices)
        if position < len(self._forced):
            key, index = self._forced[position]
            if index >= len(support):
                raise EvaluationError(
                    f"non-deterministic interface: ECV {name!r} support changed "
                    f"between trace replays")
        else:
            index = 0
            prefix = list(self._choices)
            for alternative in range(1, len(support)):
                self.unexplored.append(
                    prefix + [(f"{owner.name}.{name}", alternative)])
        value, probability = support[index]
        self._choices.append((f"{owner.name}.{name}", index))
        self.probability *= probability
        self._record(f"{owner.name}.{name}", value)
        return value


class _SamplingContext(_BaseContext):
    """Monte-Carlo context: each ECV read draws from its distribution."""

    def __init__(self, env: ECVEnvironment, rng: np.random.Generator,
                 session: "EvalSession | None" = None) -> None:
        super().__init__(env, session)
        self._rng = rng

    def read(self, owner: "EnergyInterface", name: str) -> Any:
        ecv = self._resolve(owner, name)
        value = ecv.sample(self._rng)
        self._record(f"{owner.name}.{name}", value)
        return value


class _FixedContext(_BaseContext):
    """Deterministic context: every ECV must resolve to a single value."""

    def read(self, owner: "EnergyInterface", name: str) -> Any:
        ecv = self._resolve(owner, name)
        support = ecv.support()
        if support is None or len(support) != 1:
            raise EvaluationError(
                f"deterministic evaluation requires ECV {name!r} of interface "
                f"{owner.name!r} to be bound to a single value")
        value = support[0][0]
        self._record(f"{owner.name}.{name}", value)
        return value


def _instrument_energy_method(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap an ``E_*`` method so nested calls emit spans.

    The wrapper is a no-op unless the active evaluation runs under a
    session with a :class:`~repro.core.session.SpanRecorder` hook —
    ordinary evaluations pay one contextvar read.
    """

    @functools.wraps(fn)
    def wrapper(self: "EnergyInterface", *args: Any, **kwargs: Any) -> Any:
        session = _ACTIVE_SESSION.get()
        recorder = session.recorder if session is not None else None
        if recorder is None or not recorder.push_span(self, fn.__name__, args):
            return fn(self, *args, **kwargs)
        try:
            value = fn(self, *args, **kwargs)
        except BaseException:
            recorder.pop_span()
            raise
        recorder.set_outcome(value)
        recorder.pop_span()
        return value

    wrapper._energy_span_wrapped = True
    return wrapper


@dataclass(frozen=True)
class EnergyCall:
    """A deferred ``interface.method(*args, **kwargs)`` energy query.

    The value object the canonical :func:`evaluate` consumes: calling an
    interface builds one (``interface("E_handle", pixels)``), and the
    session uses its identity (interface name, method, arguments) for
    memoization keys and span labels.  When the interface and arguments
    are picklable the call can be shipped to worker processes, which is
    what lets the parallel Monte Carlo engine shard an evaluation.
    """

    interface: "EnergyInterface"
    method: str | Callable[..., Any]
    args: tuple = ()
    #: Keyword arguments as sorted ``(name, value)`` pairs, so the call
    #: is hashable/picklable whenever its values are.
    kwargs: tuple = field(default_factory=tuple)

    @property
    def method_name(self) -> str:
        if isinstance(self.method, str):
            return self.method
        return getattr(self.method, "__name__", repr(self.method))

    def __call__(self) -> Any:
        fn = (getattr(self.interface, self.method)
              if isinstance(self.method, str) else self.method)
        return fn(*self.args, **dict(self.kwargs))

    def __repr__(self) -> str:
        name = getattr(self.interface, "name", type(self.interface).__name__)
        return f"EnergyCall({name}.{self.method_name}, args={self.args!r})"


class EnergyInterface:
    """Base class for energy interfaces.

    Subclasses define methods returning energies and may declare ECVs in
    ``__init__`` via :meth:`declare_ecv`.  Sub-interfaces (the lower-layer
    resources this interface "calls into", §3) are ordinary attributes
    whose methods are invoked directly — ECV reads in nested interfaces
    participate in the same evaluation automatically.

    Example, mirroring Fig. 1 of the paper::

        class CacheLookupInterface(EnergyInterface):
            def __init__(self):
                super().__init__("redis_cache")
                self.declare_ecv(BernoulliECV(
                    "local_cache_hit", p=0.9,
                    description="cache hit in current node"))

            def E_lookup(self, key_size, response_len):
                hit = self.ecv("local_cache_hit")
                per_byte = 5 if hit else 100
                return Energy.millijoules(per_byte * response_len)
    """

    #: ``(layer, resource)`` position in a system stack; set by
    #: :meth:`repro.core.stack.SystemStack.add_layer` so spans can be
    #: attributed to layers.  ``None`` for free-standing interfaces.
    span_labels: tuple[str, str] | None = None

    def __init_subclass__(cls, **kwargs: Any) -> None:
        # Instrument every energy method defined by the subclass so that
        # nested interface calls show up as spans when a recording session
        # is active.  Idempotent via the _energy_span_wrapped marker.
        super().__init_subclass__(**kwargs)
        for attr_name, attr in list(cls.__dict__.items()):
            if (attr_name.startswith("E_") and inspect.isfunction(attr)
                    and not getattr(attr, "_energy_span_wrapped", False)):
                setattr(cls, attr_name, _instrument_energy_method(attr))

    def __init__(self, name: str | None = None) -> None:
        self.name = name if name is not None else type(self).__name__
        self._declared_ecvs: dict[str, ECV] = {}

    # -- ECV handling ------------------------------------------------------
    def declare_ecv(self, ecv: ECV) -> None:
        """Declare an ECV with its default distribution."""
        self._declared_ecvs[ecv.name] = ecv

    def declared_ecv(self, name: str) -> ECV | None:
        """Look up a declared ECV by name."""
        return self._declared_ecvs.get(name)

    @property
    def ecv_declarations(self) -> dict[str, ECV]:
        """All declared ECVs, by name."""
        return dict(self._declared_ecvs)

    def ecv(self, name: str) -> Any:
        """Read an ECV's value inside an interface method.

        Only valid during evaluation; the active evaluation context decides
        how the read resolves (enumeration, sampling, fixed binding).
        """
        context = _ACTIVE_CONTEXT.get()
        if context is None:
            raise EvaluationError(
                f"ECV {name!r} of interface {self.name!r} was read outside an "
                f"evaluation; call the interface through evaluate()")
        return context.read(self, name)

    # -- evaluation ----------------------------------------------------------
    def __call__(self, method: str | Callable[..., Any], *args: Any,
                 **kwargs: Any) -> EnergyCall:
        """Build an :class:`EnergyCall` for the canonical :func:`evaluate`.

        ``interface("E_handle", pixels)`` is the question "how much energy
        does ``E_handle(pixels)`` use?" as a value; hand it to
        :func:`evaluate` to answer it under a session.
        """
        return EnergyCall(self, method, args, tuple(sorted(kwargs.items())))

    def _evaluate(self, method: str | Callable[..., Any], *args: Any,
                  mode: str | None = None,
                  env: ECVEnvironment | Mapping[str, Any] | None = None,
                  rng: np.random.Generator | None = None,
                  n_samples: int | None = None,
                  max_traces: int | None = None,
                  session: "EvalSession | None" = None,
                  fingerprint: Any = None,
                  engine: Any = None,
                  **kwargs: Any) -> Any:
        return evaluate(self(method, *args, **kwargs), session=session,
                        mode=mode, env=env, engine=engine, n_samples=n_samples,
                        max_traces=max_traces, rng=rng, fingerprint=fingerprint)

    def evaluate(self, method: str | Callable[..., Any], *args: Any,
                 **kwargs: Any) -> Any:
        """Deprecated: use ``evaluate(interface(method, *args), ...)``.

        The method form predates the unified entry point.  It keeps
        returning exactly what it used to; new code should build an
        :class:`EnergyCall` and go through the one canonical
        :func:`repro.core.interface.evaluate`.
        """
        warnings.warn(
            "EnergyInterface.evaluate(method, ...) is deprecated; use "
            "repro.core.interface.evaluate(interface(method, *args), ...) "
            "instead",
            DeprecationWarning, stacklevel=2)
        return self._evaluate(method, *args, **kwargs)

    def distribution(self, method: str, *args: Any,
                     env: ECVEnvironment | Mapping[str, Any] | None = None,
                     **kwargs: Any) -> EnergyDistribution:
        """Shorthand for ``evaluate(self(method, ...), mode="distribution")``."""
        return self._evaluate(method, *args, mode="distribution", env=env,
                              **kwargs)

    def expected(self, method: str, *args: Any,
                 env: ECVEnvironment | Mapping[str, Any] | None = None,
                 **kwargs: Any) -> Any:
        """Shorthand for ``evaluate(self(method, ...), mode="expected")``."""
        return self._evaluate(method, *args, mode="expected", env=env, **kwargs)

    def worst_case(self, method: str, *args: Any,
                   env: ECVEnvironment | Mapping[str, Any] | None = None,
                   **kwargs: Any) -> Energy:
        """Shorthand for ``evaluate(self(method, ...), mode="worst")``."""
        return self._evaluate(method, *args, mode="worst", env=env, **kwargs)

    def __repr__(self) -> str:
        ecvs = sorted(self._declared_ecvs)
        return f"{type(self).__name__}(name={self.name!r}, ecvs={ecvs})"


def _coerce_env(env: ECVEnvironment | Mapping[str, Any] | None) -> ECVEnvironment:
    if env is None:
        return ECVEnvironment.EMPTY
    if isinstance(env, ECVEnvironment):
        return env
    return ECVEnvironment(env)


def _run_in_context(fn: Callable[[], Any], context: _BaseContext) -> Any:
    token = _ACTIVE_CONTEXT.set(context)
    try:
        return fn()
    finally:
        _ACTIVE_CONTEXT.reset(token)


def enumerate_traces(fn: Callable[[], Any],
                     env: ECVEnvironment | Mapping[str, Any] | None = None,
                     max_traces: int | None = None,
                     worst_case: bool = False,
                     session: "EvalSession | None" = None
                     ) -> list[TraceOutcome]:
    """Enumerate all ECV-read traces of ``fn`` exactly.

    Each enumerated trace yields a :class:`TraceOutcome` with its joint
    probability (probabilities are meaningless in ``worst_case`` mode,
    where extreme values are enumerated instead of the support).

    ``max_traces`` defaults to
    :attr:`~repro.core.session.EvalSession.DEFAULT_MAX_TRACES` (the single
    home of budget defaults).

    When a ``session`` is given its hooks observe every trace (span
    recording, accounting) and ECV reads are reported to it.

    Raises :class:`~repro.core.errors.EvaluationError` when the trace tree
    exceeds ``max_traces`` and propagates an internal signal (handled by
    :func:`evaluate`) when a continuous ECV blocks exact enumeration.
    """
    if max_traces is None:
        from repro.core.session import EvalSession
        max_traces = EvalSession.DEFAULT_MAX_TRACES
    environment = _coerce_env(env)
    pending: list[list[tuple[str, int]]] = [[]]
    outcomes: list[TraceOutcome] = []
    while pending:
        forced = pending.pop()
        context = _TraceContext(environment, forced, worst_case,
                                session=session)
        if session is not None:
            session._on_trace_begin()
        value = _run_in_context(fn, context)
        if session is not None:
            session._on_trace_end(context.probability, value)
        outcomes.append(TraceOutcome(context.probability, value,
                                     dict(context.assignments)))
        pending.extend(context.unexplored)
        if len(outcomes) + len(pending) > max_traces:
            raise EvaluationError(
                f"ECV trace enumeration exceeded {max_traces} traces; "
                f"bind some ECVs or raise max_traces")
    return outcomes


def _combine_expected(outcomes: list[TraceOutcome]) -> Any:
    """Probability-weighted average of trace outcomes."""
    total_probability = sum(outcome.probability for outcome in outcomes)
    if not math.isclose(total_probability, 1.0, rel_tol=1e-6):
        raise EvaluationError(
            f"trace probabilities sum to {total_probability}, expected 1; "
            f"is the interface non-deterministic?")
    first = outcomes[0].value
    if isinstance(first, AbstractEnergy):
        total = AbstractEnergy()
        for outcome in outcomes:
            if not isinstance(outcome.value, AbstractEnergy):
                raise EvaluationError(
                    "interface mixed abstract and concrete energies across "
                    "ECV traces; return one kind consistently")
            total = total + outcome.probability * outcome.value
        return total
    mean = sum(outcome.probability * as_distribution(outcome.value).mean()
               for outcome in outcomes)
    return Energy(mean)


def _combine_distribution(outcomes: list[TraceOutcome]) -> EnergyDistribution:
    components: list[EnergyDistribution] = []
    weights: list[float] = []
    for outcome in outcomes:
        if isinstance(outcome.value, AbstractEnergy):
            raise EvaluationError(
                "distribution mode needs concrete energies; ground abstract "
                "units first")
        components.append(as_distribution(outcome.value))
        weights.append(outcome.probability)
    if all(isinstance(c, PointMass) for c in components):
        return Discrete([c.mean() for c in components], weights)
    return Mixture.collapse(components, weights)


def evaluate(fn: "EnergyCall | Callable[[], Any]", *,
             session: "EvalSession | None" = None,
             mode: str | None = None,
             env: ECVEnvironment | Mapping[str, Any] | None = None,
             engine: Any = None,
             n_samples: int | None = None,
             max_traces: int | None = None,
             rng: np.random.Generator | None = None,
             fingerprint: Any = None) -> Any:
    """THE evaluation entry point: answer an energy query under a session.

    ``fn`` is either an :class:`EnergyCall` built by calling an interface
    (``evaluate(iface("E_handle", pixels))``) or any zero-argument callable
    that reads ECVs (compositions spanning several interfaces).  Calls are
    *keyed* — the session can memoize them and label their spans — while
    plain callables are evaluated anonymously.

    Everything else is keyword-only and defaults to the session's
    configuration: ``mode`` (expected/distribution/worst/best/sample/
    fixed), ``env`` (extra ECV bindings layered over the session's),
    ``engine`` (the Monte Carlo engine — ``"serial"``, ``"vector"``,
    ``"parallel"`` or an :class:`~repro.core.mcengine.MCEngine`),
    ``n_samples`` / ``max_traces`` budgets, ``rng`` (replay-stable
    randomness override) and ``fingerprint`` (memo-key override for the
    environment).  The ``session`` resolves to the one passed in, else the
    session driving an enclosing evaluation, else a transparent default
    :class:`~repro.core.session.EvalSession`.
    """
    if session is None:
        session = _ACTIVE_SESSION.get()
    if session is None:
        from repro.core.session import EvalSession
        session = EvalSession()
        if mode is None:
            mode = "expected"
    if isinstance(fn, EnergyCall):
        return session._evaluate_call(fn, mode=mode, env=env,
                                      fingerprint=fingerprint, rng=rng,
                                      n_samples=n_samples,
                                      max_traces=max_traces, engine=engine)
    return session._evaluate_fn(fn, mode=mode, env=env, rng=rng,
                                n_samples=n_samples, max_traces=max_traces,
                                engine=engine)
