"""Power values and peak-power reasoning.

§3: "One could imagine energy interfaces that return power (i.e., energy
per unit of time), or peak power, which can be useful for resource
managers to optimize power provisioning and increase utilization of
resources."  The paper sets these aside; we implement the natural
extension because provisioning is where data-centre operators feel the
pain first (breaker limits are per-instant, not per-Joule).

* :class:`Power` — a Watts value type mirroring
  :class:`~repro.core.units.Energy` (multiplying by seconds yields
  Energy, dividing Energy by seconds yields Power).
* Peak-power evaluation needs no new machinery: a power-returning
  interface method evaluated in ``worst`` mode *is* the peak-power
  interface.  :func:`provision` packages the resulting arithmetic for a
  rack of resources, with the standard sum-of-peaks vs peak-of-sums gap
  that statistical multiplexing exploits.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

from repro.core.errors import EnergyError
from repro.core.units import Energy

__all__ = ["Power", "as_watts", "provision", "ProvisioningReport"]


class Power:
    """An amount of power, stored internally in Watts."""

    __slots__ = ("_watts",)

    def __init__(self, watts: float) -> None:
        self._watts = float(watts)

    # -- constructors ----------------------------------------------------
    @classmethod
    def watts(cls, value: float) -> "Power":
        """Construct from Watts."""
        return cls(value)

    @classmethod
    def milliwatts(cls, value: float) -> "Power":
        """Construct from milli-Watts."""
        return cls(value * 1e-3)

    @classmethod
    def kilowatts(cls, value: float) -> "Power":
        """Construct from kilo-Watts."""
        return cls(value * 1e3)

    # -- accessors --------------------------------------------------------
    @property
    def as_watts(self) -> float:
        """The value in Watts as a plain float."""
        return self._watts

    @property
    def as_kilowatts(self) -> float:
        """The value in kilo-Watts."""
        return self._watts / 1e3

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: "Power") -> "Power":
        if isinstance(other, Power):
            return Power(self._watts + other._watts)
        if other == 0:
            return Power(self._watts)
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: "Power") -> "Power":
        if isinstance(other, Power):
            return Power(self._watts - other._watts)
        return NotImplemented

    def __mul__(self, factor: float) -> Union["Power", Energy]:
        if isinstance(factor, (int, float)):
            return Power(self._watts * factor)
        return NotImplemented

    __rmul__ = __mul__

    def for_duration(self, seconds: float) -> Energy:
        """The energy of drawing this power for ``seconds``."""
        if seconds < 0:
            raise EnergyError(f"duration must be >= 0, got {seconds}")
        return Energy(self._watts * seconds)

    def __truediv__(self, other: Union["Power", float]) -> Union["Power",
                                                                 float]:
        if isinstance(other, Power):
            return self._watts / other._watts
        if isinstance(other, (int, float)):
            return Power(self._watts / other)
        return NotImplemented

    # -- comparisons ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Power):
            return self._watts == other._watts
        return NotImplemented

    def __lt__(self, other: "Power") -> bool:
        if isinstance(other, Power):
            return self._watts < other._watts
        return NotImplemented

    def __le__(self, other: "Power") -> bool:
        if isinstance(other, Power):
            return self._watts <= other._watts
        return NotImplemented

    def __gt__(self, other: "Power") -> bool:
        if isinstance(other, Power):
            return self._watts > other._watts
        return NotImplemented

    def __ge__(self, other: "Power") -> bool:
        if isinstance(other, Power):
            return self._watts >= other._watts
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Power", self._watts))

    def isclose(self, other: "Power", rel_tol: float = 1e-9) -> bool:
        """Approximate equality."""
        return math.isclose(self._watts, other._watts, rel_tol=rel_tol)

    def __repr__(self) -> str:
        if abs(self._watts) >= 1e3:
            return f"Power({self._watts / 1e3:.6g} kW)"
        if abs(self._watts) >= 1.0 or self._watts == 0:
            return f"Power({self._watts:.6g} W)"
        return f"Power({self._watts * 1e3:.6g} mW)"


def as_watts(value: Union[Power, float, int]) -> float:
    """Coerce a :class:`Power` or a bare number (Watts) to a float."""
    if isinstance(value, Power):
        return value.as_watts
    if isinstance(value, (int, float)):
        return float(value)
    raise TypeError(f"cannot interpret {value!r} as power in Watts")


class ProvisioningReport:
    """Outcome of a peak-power provisioning calculation."""

    def __init__(self, sum_of_peaks_w: float, diversified_peak_w: float,
                 budget_w: float) -> None:
        self.sum_of_peaks = Power(sum_of_peaks_w)
        self.diversified_peak = Power(diversified_peak_w)
        self.budget = Power(budget_w)

    @property
    def fits_worst_case(self) -> bool:
        """Does the breaker survive literally everything peaking at once?"""
        return self.sum_of_peaks.as_watts <= self.budget.as_watts

    @property
    def fits_diversified(self) -> bool:
        """Does it survive under the diversity assumption?"""
        return self.diversified_peak.as_watts <= self.budget.as_watts

    @property
    def oversubscription(self) -> float:
        """sum-of-peaks / budget — how hard the operator is multiplexing."""
        if self.budget.as_watts == 0:
            return float("inf")
        return self.sum_of_peaks.as_watts / self.budget.as_watts

    def __repr__(self) -> str:
        return (f"ProvisioningReport(sum_of_peaks={self.sum_of_peaks}, "
                f"diversified={self.diversified_peak}, "
                f"budget={self.budget})")


def provision(peaks: Sequence[Union[Power, float]],
              budget: Union[Power, float],
              diversity_factor: float = 1.0) -> ProvisioningReport:
    """Peak-power provisioning from per-resource peak interfaces.

    ``peaks`` are the resources' peak powers (from their power interfaces
    evaluated in worst-case mode); ``diversity_factor`` in (0, 1] scales
    the sum to account for peaks not coinciding (1.0 = fully
    conservative).  Returns a report comparing both against the budget.
    """
    if not 0.0 < diversity_factor <= 1.0:
        raise EnergyError(
            f"diversity factor must be in (0, 1], got {diversity_factor}")
    total = sum(as_watts(p) for p in peaks)
    return ProvisioningReport(
        sum_of_peaks_w=total,
        diversified_peak_w=total * diversity_factor,
        budget_w=as_watts(budget),
    )
