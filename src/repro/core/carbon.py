"""Carbon-aware use of energy interfaces.

The paper's related-work section surveys energy/carbon accounting and
carbon-aware networking; its own proposal stops at Joules.  The natural
composition is one step further: once a job's *energy* behaviour is a
program (its interface), multiplying by a grid carbon-intensity signal
makes its *carbon* behaviour a program too — and temporal flexibility
(start a deadline-constrained job when the grid is clean) becomes an
optimisation over interface evaluations rather than a measurement
campaign.

* :class:`CarbonIntensitySignal` — grams CO2e per kWh as a function of
  time; :func:`diurnal_grid` builds the standard solar-dip/evening-peak
  shape.
* :func:`carbon_of` — Joules × intensity → grams.
* :class:`CarbonAwareScheduler` — choose the start time of a job with a
  known power profile (taken from its energy interface) under a
  deadline, minimising total emissions.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.core.errors import EnergyError
from repro.core.units import Energy, as_joules

__all__ = ["CarbonIntensitySignal", "diurnal_grid", "carbon_of",
           "CarbonAwareScheduler", "SchedulingChoice", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86_400.0


class CarbonIntensitySignal:
    """Grid carbon intensity over time, in gCO2e per kWh."""

    def __init__(self, intensity_fn: Callable[[float], float],
                 name: str = "grid") -> None:
        self._fn = intensity_fn
        self.name = name

    def at(self, t_seconds: float) -> float:
        """Intensity at an absolute time, gCO2e/kWh."""
        value = float(self._fn(t_seconds))
        if value < 0:
            raise EnergyError(f"signal {self.name!r} returned negative "
                              f"intensity {value}")
        return value

    def average(self, t_start: float, t_end: float,
                resolution_s: float = 900.0) -> float:
        """Mean intensity over a window (left Riemann sum)."""
        if t_end <= t_start:
            raise EnergyError(f"inverted window [{t_start}, {t_end}]")
        steps = max(int((t_end - t_start) / resolution_s), 1)
        width = (t_end - t_start) / steps
        return sum(self.at(t_start + index * width)
                   for index in range(steps)) / steps


def diurnal_grid(base_g_per_kwh: float = 120.0,
                 peak_g_per_kwh: float = 420.0,
                 solar_dip_fraction: float = 0.45) -> CarbonIntensitySignal:
    """A day-shaped grid: clean around solar noon, dirty in the evening.

    ``solar_dip_fraction`` scales how far below the daily mean the noon
    trough drops.
    """
    if not 0 <= base_g_per_kwh <= peak_g_per_kwh:
        raise EnergyError("need 0 <= base <= peak intensity")
    if not 0.0 <= solar_dip_fraction <= 1.0:
        raise EnergyError("solar_dip_fraction must be in [0, 1]")

    def intensity(t_seconds: float) -> float:
        day_phase = 2 * math.pi * (t_seconds % SECONDS_PER_DAY) \
            / SECONDS_PER_DAY
        # Evening peak (phase ~ 0.8 day), solar dip at noon (phase 0.5).
        evening = 0.5 * (1 + math.cos(day_phase - 1.6 * math.pi))
        solar = math.sin(day_phase - 0.5 * math.pi)
        solar_dip = solar_dip_fraction * max(solar, 0.0)
        raw = base_g_per_kwh + (peak_g_per_kwh - base_g_per_kwh) * evening
        return max(raw * (1.0 - solar_dip), 0.0)

    return CarbonIntensitySignal(intensity, name="diurnal")


def carbon_of(energy: Energy | float, intensity_g_per_kwh: float) -> float:
    """Emissions of ``energy`` at a given intensity, in grams CO2e."""
    if intensity_g_per_kwh < 0:
        raise EnergyError("intensity must be >= 0")
    kwh = as_joules(energy) / 3.6e6
    return kwh * intensity_g_per_kwh


class SchedulingChoice:
    """One evaluated start time for a flexible job."""

    def __init__(self, start_seconds: float, grams: float) -> None:
        self.start_seconds = start_seconds
        self.grams = grams

    def __repr__(self) -> str:
        hours = self.start_seconds / 3600.0
        return f"SchedulingChoice(start=+{hours:.1f} h, {self.grams:.0f} g)"


class CarbonAwareScheduler:
    """Pick when to run a deadline-flexible job to minimise emissions.

    ``power_profile(t_rel)`` is the job's power draw (Watts) ``t_rel``
    seconds after its own start — obtainable from its energy interface —
    and ``duration_s`` its length.
    """

    def __init__(self, signal: CarbonIntensitySignal,
                 resolution_s: float = 900.0) -> None:
        if resolution_s <= 0:
            raise EnergyError("resolution must be positive")
        self.signal = signal
        self.resolution_s = resolution_s

    def emissions(self, power_profile: Callable[[float], float],
                  duration_s: float, start_s: float) -> float:
        """Grams CO2e of running the job starting at ``start_s``."""
        if duration_s <= 0:
            raise EnergyError("duration must be positive")
        steps = max(int(duration_s / self.resolution_s), 1)
        width = duration_s / steps
        grams = 0.0
        for index in range(steps):
            t_rel = index * width
            power = power_profile(t_rel)
            if power < 0:
                raise EnergyError("power profile returned negative Watts")
            energy_j = power * width
            grams += carbon_of(energy_j, self.signal.at(start_s + t_rel))
        return grams

    def best_start(self, power_profile: Callable[[float], float],
                   duration_s: float, deadline_s: float,
                   candidates: Sequence[float] | None = None
                   ) -> SchedulingChoice:
        """The feasible start minimising emissions.

        The job must finish by ``deadline_s`` (absolute).  Candidate
        starts default to one per resolution step across the slack.
        """
        slack = deadline_s - duration_s
        if slack < 0:
            raise EnergyError("the job cannot meet the deadline at all")
        if candidates is None:
            steps = max(int(slack / self.resolution_s), 1)
            candidates = [slack * index / steps for index in range(steps + 1)]
        best: SchedulingChoice | None = None
        for start in candidates:
            if start < 0 or start > slack:
                continue
            grams = self.emissions(power_profile, duration_s, start)
            if best is None or grams < best.grams:
                best = SchedulingChoice(start, grams)
        if best is None:
            raise EnergyError("no feasible candidate start times")
        return best
