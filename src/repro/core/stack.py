"""The layered system stack: resources, resource managers and layers.

Fig. 2 of the paper models a system as a stack of *layers*; each layer
contains *resources* (hardware or software components that perform
energy-consuming work) administered by at least one *resource manager*.
Managers have visibility into the energy interfaces of the resources they
manage, and — because they decide allocation and hold the bindings between
layers — they are the agents that *compose* those interfaces and export
the result to the layer above (arrows ①–④ in the figure).

:class:`SystemStack` captures the two advantages §3 claims for this
layered view:

* **Machine retargeting** — :meth:`SystemStack.replace_layer` swaps the
  bottom (hardware) layer for a different machine's energy interfaces;
  nothing above changes, and end-to-end predictions update automatically.
* **Granularity tailoring** — callers can ask any layer for its exported
  interfaces, obtaining the same system's energy behaviour at service
  level, runtime level or hardware level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.core.composition import BoundInterface
from repro.core.ecv import ECVEnvironment
from repro.core.errors import CompositionError
from repro.core.interface import EnergyInterface

if TYPE_CHECKING:
    from repro.core.session import EvalSession

__all__ = ["Resource", "ResourceManager", "Layer", "SystemStack"]


def _set_span_labels(interface: EnergyInterface,
                     labels: tuple[str, str]) -> None:
    """Stamp an interface (unwrapping combinators) with its stack position."""
    target: Any = interface
    while target is not None:
        try:
            target.span_labels = labels
            return
        except AttributeError:
            # Combinator wrappers expose span_labels as a read-only
            # forwarding property; label the wrapped interface instead.
            inner = getattr(target, "inner", None)
            target = inner if inner is not target else None


@dataclass
class Resource:
    """A hardware or software component with an energy interface.

    ``functional`` optionally holds the implementation object (whose
    semantics the functional interface would describe); the framework only
    needs it for divergence testing (§4.2).
    """

    name: str
    energy_interface: EnergyInterface
    functional: Any = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise CompositionError("a resource needs a non-empty name")


class ResourceManager:
    """A resource manager: registers resources, exports composed interfaces.

    The base class exports each resource's interface with the manager's
    *known bindings* applied (see :meth:`known_bindings`).  Subclasses in
    :mod:`repro.managers` override :meth:`known_bindings` or
    :meth:`export_interface` to encode their management policy — a cache
    manager binds hit-rate ECVs from observed statistics, a scheduler binds
    DVFS-state ECVs from its governor policy, and so on.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._resources: dict[str, Resource] = {}

    # -- registration ------------------------------------------------------
    def register(self, resource: Resource) -> Resource:
        """Register a resource under this manager."""
        if resource.name in self._resources:
            raise CompositionError(
                f"manager {self.name!r} already manages a resource named "
                f"{resource.name!r}")
        self._resources[resource.name] = resource
        return resource

    def resource(self, name: str) -> Resource:
        """Look up a managed resource by name."""
        try:
            return self._resources[name]
        except KeyError:
            raise CompositionError(
                f"manager {self.name!r} manages no resource named {name!r}; "
                f"known: {sorted(self._resources)}") from None

    @property
    def resources(self) -> list[Resource]:
        """All managed resources, in registration order."""
        return list(self._resources.values())

    # -- composition ---------------------------------------------------------
    def known_bindings(self) -> Mapping[str, Any]:
        """ECV bindings this manager can supply from its policy/state.

        The base manager knows nothing; subclasses override.
        """
        return {}

    def export_interface(self, resource_name: str) -> EnergyInterface:
        """The interface for ``resource_name`` as exported to the layer above.

        Applies :meth:`known_bindings` (as defaults — explicit caller
        environments still override them, enabling what-if analysis).
        """
        resource = self.resource(resource_name)
        bindings = dict(self.known_bindings())
        if not bindings:
            return resource.energy_interface
        return BoundInterface(resource.energy_interface, bindings)

    def export_all(self) -> dict[str, EnergyInterface]:
        """Exported interfaces for every managed resource."""
        return {name: self.export_interface(name) for name in self._resources}

    def make_session(self, **kwargs: Any) -> "EvalSession":
        """An :class:`~repro.core.session.EvalSession` seeded with this
        manager's known bindings (explicit ``env=`` entries win)."""
        from repro.core.session import EvalSession
        merged = dict(self.known_bindings())
        extra = kwargs.pop("env", None)
        if isinstance(extra, ECVEnvironment):
            merged.update(extra.bindings)
        elif extra:
            merged.update(extra)
        return EvalSession(env=merged, **kwargs)

    def evaluate(self, resource_name: str, method: str, *args: Any,
                 session: "EvalSession | None" = None,
                 **kwargs: Any) -> Any:
        """Evaluate a managed resource's exported interface.

        Threads ``session`` through so memoization/span hooks observe the
        manager's predictions; without one the usual transparent default
        applies.
        """
        return self.export_interface(resource_name)._evaluate(
            method, *args, session=session, **kwargs)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"resources={sorted(self._resources)})")


@dataclass
class Layer:
    """One layer of the system stack: resources plus their manager(s)."""

    name: str
    managers: list[ResourceManager] = field(default_factory=list)

    def add_manager(self, manager: ResourceManager) -> ResourceManager:
        """Attach a resource manager to this layer."""
        self.managers.append(manager)
        return manager

    def manager(self, name: str) -> ResourceManager:
        """Look up a manager by name."""
        for manager in self.managers:
            if manager.name == name:
                return manager
        raise CompositionError(
            f"layer {self.name!r} has no manager named {name!r}; known: "
            f"{[m.name for m in self.managers]}")

    def resources(self) -> list[Resource]:
        """All resources across this layer's managers."""
        found: list[Resource] = []
        for manager in self.managers:
            found.extend(manager.resources)
        return found

    def exported_interfaces(self) -> dict[str, EnergyInterface]:
        """Interfaces this layer exports upward, keyed by resource name."""
        exported: dict[str, EnergyInterface] = {}
        for manager in self.managers:
            for name, interface in manager.export_all().items():
                if name in exported:
                    raise CompositionError(
                        f"layer {self.name!r} exports two resources named "
                        f"{name!r}")
                exported[name] = interface
        return exported


class SystemStack:
    """An ordered stack of layers, bottom (hardware) first."""

    def __init__(self, layers: Iterable[Layer] = ()) -> None:
        self._layers: list[Layer] = []
        for layer in layers:
            self.add_layer(layer)

    # -- structure -----------------------------------------------------------
    def add_layer(self, layer: Layer) -> Layer:
        """Append a layer on top of the stack."""
        if any(existing.name == layer.name for existing in self._layers):
            raise CompositionError(f"stack already has a layer named {layer.name!r}")
        self._layers.append(layer)
        self._label_layer(layer)
        return layer

    @staticmethod
    def _label_layer(layer: Layer) -> None:
        for resource in layer.resources():
            _set_span_labels(resource.energy_interface,
                             (layer.name, resource.name))

    @property
    def layers(self) -> list[Layer]:
        """Layers bottom-up."""
        return list(self._layers)

    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        for layer in self._layers:
            if layer.name == name:
                return layer
        raise CompositionError(
            f"stack has no layer named {name!r}; known: "
            f"{[layer.name for layer in self._layers]}")

    def replace_layer(self, name: str, replacement: Layer) -> None:
        """Swap a layer in place — §3's machine-retargeting advantage.

        Replacing the bottom (hardware) layer re-targets every prediction
        made through exported interfaces without touching upper layers.
        """
        for index, layer in enumerate(self._layers):
            if layer.name == name:
                self._layers[index] = replacement
                self._label_layer(replacement)
                return
        raise CompositionError(f"stack has no layer named {name!r} to replace")

    # -- lookup ---------------------------------------------------------------
    def resource(self, path: str) -> Resource:
        """Look up a resource by ``"layer/resource"`` path."""
        if "/" not in path:
            raise CompositionError(
                f"resource path must look like 'layer/resource', got {path!r}")
        layer_name, _, resource_name = path.partition("/")
        layer = self.layer(layer_name)
        for manager in layer.managers:
            for resource in manager.resources:
                if resource.name == resource_name:
                    return resource
        raise CompositionError(
            f"layer {layer_name!r} has no resource named {resource_name!r}")

    def exported_interface(self, path: str) -> EnergyInterface:
        """The exported (manager-composed) interface of a resource."""
        layer_name, _, resource_name = path.partition("/")
        layer = self.layer(layer_name)
        for manager in layer.managers:
            try:
                manager.resource(resource_name)
            except CompositionError:
                continue
            return manager.export_interface(resource_name)
        raise CompositionError(
            f"layer {layer_name!r} exports no resource named {resource_name!r}")

    def stack_bindings(self) -> dict[str, Any]:
        """All ECV bindings known by any manager in the stack.

        Bindings from higher layers win on conflict: they are closer to
        the workload and therefore better informed.
        """
        merged: dict[str, Any] = {}
        for layer in self._layers:
            for manager in layer.managers:
                merged.update(manager.known_bindings())
        return merged

    def session(self, **kwargs: Any) -> "EvalSession":
        """An :class:`~repro.core.session.EvalSession` for this stack.

        The session's environment overlay starts from
        :meth:`stack_bindings` (explicit ``env=`` entries win), so
        evaluations through it see the same manager knowledge as the
        exported interfaces.
        """
        from repro.core.session import EvalSession
        merged = self.stack_bindings()
        extra = kwargs.pop("env", None)
        if isinstance(extra, ECVEnvironment):
            merged.update(extra.bindings)
        elif extra:
            merged.update(extra)
        return EvalSession(env=merged, **kwargs)

    def __repr__(self) -> str:
        names = " -> ".join(layer.name for layer in self._layers)
        return f"SystemStack({names})"
