"""Energy contracts: interfaces as requirements (§4.1).

In the interface→implementation workflow, a module's energy interface is
written *before* the implementation and acts as an upper-bound requirement:
for each path through the interface, its return value is the worst-case
energy any conforming implementation may consume on that path.  Some
modules need stronger constraints — crypto code must be *constant-energy*
so that energy consumption leaks nothing about secrets.

Contract types:

:class:`UpperBoundContract`
    Pointwise bound: for every probe input, the implementation's worst-case
    energy must not exceed the bound interface's worst-case energy.

:class:`BudgetContract`
    A single energy budget covering all probe inputs.

:class:`ConstantEnergyContract`
    All probe inputs and all ECV traces must consume (nearly) identical
    energy — the side-channel requirement.

:func:`check_refinement`
    The §4.1 compatibility check: does a composed lower-level interface
    satisfy the envelope promised by a higher-level interface?

:class:`EnergySpec` / :func:`energy_spec`
    Declarative contract *metadata* attached to an implementation
    function, read by the static linter
    (:mod:`repro.analysis.lint`): which resources it may call and at
    what cost, input ranges, secret parameters, constant-energy intent,
    a handwritten worst-case bound, and which resource results the
    handwritten interface exposes as ECVs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.ecv import ECVEnvironment
from repro.core.errors import ContractViolation
from repro.core.interface import evaluate
from repro.core.units import Energy, as_joules

__all__ = [
    "ContractReport",
    "Violation",
    "UpperBoundContract",
    "BudgetContract",
    "ConstantEnergyContract",
    "check_refinement",
    "EnergySpec",
    "energy_spec",
]

EnergyFn = Callable[..., Any]


@dataclass(frozen=True)
class Violation:
    """One contract violation: the probe input and the offending energies."""

    inputs: tuple
    actual: Energy
    allowed: Energy
    detail: str = ""

    def __str__(self) -> str:
        base = (f"inputs={self.inputs!r}: actual {self.actual} exceeds "
                f"allowed {self.allowed}")
        return f"{base} ({self.detail})" if self.detail else base


@dataclass
class ContractReport:
    """Result of checking a contract over a set of probe inputs."""

    contract: str
    checked: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no probe input violated the contract."""
        return not self.violations

    def raise_on_violation(self) -> None:
        """Raise :class:`~repro.core.errors.ContractViolation` if not ok."""
        if not self.ok:
            lines = "\n  ".join(str(v) for v in self.violations[:10])
            raise ContractViolation(
                f"{self.contract}: {len(self.violations)} of {self.checked} "
                f"probe inputs violate the contract:\n  {lines}")

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return f"{self.contract}: {self.checked} inputs checked, {status}"


def _worst(fn: EnergyFn, inputs: tuple,
           env: ECVEnvironment | Mapping[str, Any] | None) -> Energy:
    return evaluate(lambda: fn(*inputs), mode="worst", env=env)


def _as_input_tuples(inputs: Iterable) -> list[tuple]:
    return [args if isinstance(args, tuple) else (args,) for args in inputs]


class UpperBoundContract:
    """``implementation(x)`` must never exceed ``bound(x)`` for probed ``x``.

    ``bound`` is an energy-interface method (it may itself read ECVs; its
    worst case is used).  ``slack`` is a multiplicative allowance: a slack
    of 0.05 permits the implementation to exceed the bound by 5 %.
    """

    def __init__(self, bound: EnergyFn, name: str = "upper-bound contract",
                 slack: float = 0.0) -> None:
        if slack < 0:
            raise ContractViolation(f"slack must be >= 0, got {slack}")
        self._bound = bound
        self._slack = slack
        self.name = name

    def check(self, implementation: EnergyFn, inputs: Iterable,
              env: ECVEnvironment | Mapping[str, Any] | None = None
              ) -> ContractReport:
        """Check the implementation against the bound on every probe input."""
        report = ContractReport(self.name)
        for args in _as_input_tuples(inputs):
            actual = _worst(implementation, args, env)
            allowed = _worst(self._bound, args, env) * (1.0 + self._slack)
            report.checked += 1
            if actual > allowed:
                report.violations.append(Violation(args, actual, allowed))
        return report


class BudgetContract:
    """The implementation must stay within a fixed energy budget."""

    def __init__(self, budget: Energy | float,
                 name: str = "budget contract") -> None:
        self._budget = Energy(as_joules(budget))
        self.name = name

    @property
    def budget(self) -> Energy:
        """The allowed energy per call."""
        return self._budget

    def check(self, implementation: EnergyFn, inputs: Iterable,
              env: ECVEnvironment | Mapping[str, Any] | None = None
              ) -> ContractReport:
        """Check every probe input against the budget."""
        report = ContractReport(self.name)
        for args in _as_input_tuples(inputs):
            actual = _worst(implementation, args, env)
            report.checked += 1
            if actual > self._budget:
                report.violations.append(Violation(args, actual, self._budget))
        return report


class ConstantEnergyContract:
    """All inputs and ECV traces must consume identical energy.

    This is the crypto side-channel requirement from §4.1: a mere upper
    bound does not rule out energy variation correlated with secrets, so
    the contract checks that the *spread* between the best and worst case
    across all probe inputs stays within ``rel_tol`` of the mean.
    """

    def __init__(self, rel_tol: float = 1e-6,
                 name: str = "constant-energy contract") -> None:
        self._rel_tol = rel_tol
        self.name = name

    def check(self, implementation: EnergyFn, inputs: Iterable,
              env: ECVEnvironment | Mapping[str, Any] | None = None
              ) -> ContractReport:
        """Check that energy is constant across inputs and ECV traces."""
        report = ContractReport(self.name)
        observed: list[tuple[tuple, float, float]] = []
        for args in _as_input_tuples(inputs):
            worst = evaluate(lambda a=args: implementation(*a),
                             mode="worst", env=env).as_joules
            best = evaluate(lambda a=args: implementation(*a),
                            mode="best", env=env).as_joules
            observed.append((args, best, worst))
            report.checked += 1
        if not observed:
            return report
        lows = [low for _, low, _ in observed]
        highs = [high for _, _, high in observed]
        mean = (min(lows) + max(highs)) / 2.0
        allowed_spread = abs(mean) * self._rel_tol
        if max(highs) - min(lows) > allowed_spread:
            for args, low, high in observed:
                if high - min(lows) > allowed_spread or max(highs) - low > allowed_spread:
                    report.violations.append(Violation(
                        args, Energy(high), Energy(min(lows) + allowed_spread),
                        detail=f"energy varies by {max(highs) - min(lows):.3g} J "
                               f"across inputs/traces"))
        return report


def check_refinement(abstract: EnergyFn, concrete: EnergyFn,
                     inputs: Iterable,
                     env: ECVEnvironment | Mapping[str, Any] | None = None,
                     slack: float = 0.0,
                     name: str = "refinement check") -> ContractReport:
    """§4.1 compatibility: does ``concrete`` fit ``abstract``'s envelope?

    For every probe input, the worst case of the concrete (composed,
    lower-level) interface must not exceed the worst case promised by the
    abstract (higher-level) interface.  This is the "first-cut answer on
    whether modules are compatible with each other" run before any
    implementation exists.
    """
    contract = UpperBoundContract(abstract, name=name, slack=slack)
    return contract.check(concrete, inputs, env=env)


@dataclass(frozen=True)
class EnergySpec:
    """Checkable contract metadata for one implementation function.

    This is the static half of §4's workflows: everything the
    :mod:`repro.analysis.lint` checker needs to verify an implementation
    against its interface *without running it*.  The fields are plain
    data so that :mod:`repro.core` stays independent of the analysis
    toolchain; the linter interprets them.

    ``resources``
        Resource namespace the implementation may call:
        ``{"cache": {"lookup": "bool"}}`` declares ``res.cache.lookup``
        returning a boolean (an ECV); methods not listed return nothing.
    ``costs``
        Worst-case per-call energy of each ``"resource.method"``, either
        a plain float (Joules per call) or ``("per_unit", j)`` meaning
        ``j`` Joules times the call's first argument.
    ``input_bounds``
        Interval domain for the inputs, ``{"n": (0, 4096)}``.  Inputs
        (and resource-call results) not listed default to ``[0, +inf)``.
    ``secret_params``
        Parameters carrying secrets; with ``constant_energy`` set, the
        taint analysis must prove no branch or trip count depends on
        them (the static :class:`ConstantEnergyContract`).
    ``bound``
        A handwritten worst-case interface over the same inputs,
        returning Joules as a *branch-free* arithmetic expression — the
        interface-first contract of §4.1, checked symbolically (EB104).
        ``slack`` is the usual multiplicative allowance.
    ``exposed_ecvs``
        ``"resource.method"`` results the module's handwritten interface
        exposes as ECVs; branching on any other resource result is an
        undeclared-ECV bug (EB105).
    ``state_models``
        :class:`~repro.analysis.sideeffects.DeviceStateModel` instances
        (stored opaquely) for path-exhaustive side-effect checking
        (EB103).
    ``helpers``
        Name bindings visible to the symbolic executor (helper functions
        are inlined, other values substituted).
    """

    resources: Mapping[str, Mapping[str, str]] = field(default_factory=dict)
    costs: Mapping[str, Any] = field(default_factory=dict)
    input_bounds: Mapping[str, tuple[float, float]] = field(
        default_factory=dict)
    secret_params: tuple[str, ...] = ()
    constant_energy: bool = False
    bound: Callable[..., Any] | None = None
    slack: float = 0.0
    exposed_ecvs: tuple[str, ...] = ()
    state_models: tuple[Any, ...] = ()
    helpers: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.slack < 0:
            raise ContractViolation(f"slack must be >= 0, got {self.slack}")
        for name, (low, high) in self.input_bounds.items():
            if low > high:
                raise ContractViolation(
                    f"input bound for {name!r} is empty: ({low}, {high})")


def energy_spec(*, resources: Mapping[str, Mapping[str, str]] | None = None,
                costs: Mapping[str, Any] | None = None,
                input_bounds: Mapping[str, tuple[float, float]] | None = None,
                secret_params: Sequence[str] = (),
                constant_energy: bool = False,
                bound: Callable[..., Any] | None = None,
                slack: float = 0.0,
                exposed_ecvs: Sequence[str] = (),
                state_models: Sequence[Any] = (),
                helpers: Mapping[str, Any] | None = None
                ) -> Callable[[Callable], Callable]:
    """Attach an :class:`EnergySpec` to an implementation function.

    The decorated function is returned unchanged (so it stays directly
    runnable and symbolically executable); the spec lands on
    ``fn.__energy_spec__``, where :func:`repro.analysis.lint.lint_module`
    discovers it.
    """
    spec = EnergySpec(
        resources=dict(resources or {}),
        costs=dict(costs or {}),
        input_bounds=dict(input_bounds or {}),
        secret_params=tuple(secret_params),
        constant_energy=constant_energy,
        bound=bound,
        slack=slack,
        exposed_ecvs=tuple(exposed_ecvs),
        state_models=tuple(state_models),
        helpers=dict(helpers or {}),
    )

    def attach(fn: Callable) -> Callable:
        fn.__energy_spec__ = spec
        return fn

    return attach
