"""Energy contracts: interfaces as requirements (§4.1).

In the interface→implementation workflow, a module's energy interface is
written *before* the implementation and acts as an upper-bound requirement:
for each path through the interface, its return value is the worst-case
energy any conforming implementation may consume on that path.  Some
modules need stronger constraints — crypto code must be *constant-energy*
so that energy consumption leaks nothing about secrets.

Contract types:

:class:`UpperBoundContract`
    Pointwise bound: for every probe input, the implementation's worst-case
    energy must not exceed the bound interface's worst-case energy.

:class:`BudgetContract`
    A single energy budget covering all probe inputs.

:class:`ConstantEnergyContract`
    All probe inputs and all ECV traces must consume (nearly) identical
    energy — the side-channel requirement.

:func:`check_refinement`
    The §4.1 compatibility check: does a composed lower-level interface
    satisfy the envelope promised by a higher-level interface?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.core.ecv import ECVEnvironment
from repro.core.errors import ContractViolation
from repro.core.interface import evaluate
from repro.core.units import Energy, as_joules

__all__ = [
    "ContractReport",
    "Violation",
    "UpperBoundContract",
    "BudgetContract",
    "ConstantEnergyContract",
    "check_refinement",
]

EnergyFn = Callable[..., Any]


@dataclass(frozen=True)
class Violation:
    """One contract violation: the probe input and the offending energies."""

    inputs: tuple
    actual: Energy
    allowed: Energy
    detail: str = ""

    def __str__(self) -> str:
        base = (f"inputs={self.inputs!r}: actual {self.actual} exceeds "
                f"allowed {self.allowed}")
        return f"{base} ({self.detail})" if self.detail else base


@dataclass
class ContractReport:
    """Result of checking a contract over a set of probe inputs."""

    contract: str
    checked: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no probe input violated the contract."""
        return not self.violations

    def raise_on_violation(self) -> None:
        """Raise :class:`~repro.core.errors.ContractViolation` if not ok."""
        if not self.ok:
            lines = "\n  ".join(str(v) for v in self.violations[:10])
            raise ContractViolation(
                f"{self.contract}: {len(self.violations)} of {self.checked} "
                f"probe inputs violate the contract:\n  {lines}")

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return f"{self.contract}: {self.checked} inputs checked, {status}"


def _worst(fn: EnergyFn, inputs: tuple,
           env: ECVEnvironment | Mapping[str, Any] | None) -> Energy:
    return evaluate(lambda: fn(*inputs), mode="worst", env=env)


def _as_input_tuples(inputs: Iterable) -> list[tuple]:
    return [args if isinstance(args, tuple) else (args,) for args in inputs]


class UpperBoundContract:
    """``implementation(x)`` must never exceed ``bound(x)`` for probed ``x``.

    ``bound`` is an energy-interface method (it may itself read ECVs; its
    worst case is used).  ``slack`` is a multiplicative allowance: a slack
    of 0.05 permits the implementation to exceed the bound by 5 %.
    """

    def __init__(self, bound: EnergyFn, name: str = "upper-bound contract",
                 slack: float = 0.0) -> None:
        if slack < 0:
            raise ContractViolation(f"slack must be >= 0, got {slack}")
        self._bound = bound
        self._slack = slack
        self.name = name

    def check(self, implementation: EnergyFn, inputs: Iterable,
              env: ECVEnvironment | Mapping[str, Any] | None = None
              ) -> ContractReport:
        """Check the implementation against the bound on every probe input."""
        report = ContractReport(self.name)
        for args in _as_input_tuples(inputs):
            actual = _worst(implementation, args, env)
            allowed = _worst(self._bound, args, env) * (1.0 + self._slack)
            report.checked += 1
            if actual > allowed:
                report.violations.append(Violation(args, actual, allowed))
        return report


class BudgetContract:
    """The implementation must stay within a fixed energy budget."""

    def __init__(self, budget: Energy | float,
                 name: str = "budget contract") -> None:
        self._budget = Energy(as_joules(budget))
        self.name = name

    @property
    def budget(self) -> Energy:
        """The allowed energy per call."""
        return self._budget

    def check(self, implementation: EnergyFn, inputs: Iterable,
              env: ECVEnvironment | Mapping[str, Any] | None = None
              ) -> ContractReport:
        """Check every probe input against the budget."""
        report = ContractReport(self.name)
        for args in _as_input_tuples(inputs):
            actual = _worst(implementation, args, env)
            report.checked += 1
            if actual > self._budget:
                report.violations.append(Violation(args, actual, self._budget))
        return report


class ConstantEnergyContract:
    """All inputs and ECV traces must consume identical energy.

    This is the crypto side-channel requirement from §4.1: a mere upper
    bound does not rule out energy variation correlated with secrets, so
    the contract checks that the *spread* between the best and worst case
    across all probe inputs stays within ``rel_tol`` of the mean.
    """

    def __init__(self, rel_tol: float = 1e-6,
                 name: str = "constant-energy contract") -> None:
        self._rel_tol = rel_tol
        self.name = name

    def check(self, implementation: EnergyFn, inputs: Iterable,
              env: ECVEnvironment | Mapping[str, Any] | None = None
              ) -> ContractReport:
        """Check that energy is constant across inputs and ECV traces."""
        report = ContractReport(self.name)
        observed: list[tuple[tuple, float, float]] = []
        for args in _as_input_tuples(inputs):
            worst = evaluate(lambda a=args: implementation(*a),
                             mode="worst", env=env).as_joules
            best = evaluate(lambda a=args: implementation(*a),
                            mode="best", env=env).as_joules
            observed.append((args, best, worst))
            report.checked += 1
        if not observed:
            return report
        lows = [low for _, low, _ in observed]
        highs = [high for _, _, high in observed]
        mean = (min(lows) + max(highs)) / 2.0
        allowed_spread = abs(mean) * self._rel_tol
        if max(highs) - min(lows) > allowed_spread:
            for args, low, high in observed:
                if high - min(lows) > allowed_spread or max(highs) - low > allowed_spread:
                    report.violations.append(Violation(
                        args, Energy(high), Energy(min(lows) + allowed_spread),
                        detail=f"energy varies by {max(highs) - min(lows):.3g} J "
                               f"across inputs/traces"))
        return report


def check_refinement(abstract: EnergyFn, concrete: EnergyFn,
                     inputs: Iterable,
                     env: ECVEnvironment | Mapping[str, Any] | None = None,
                     slack: float = 0.0,
                     name: str = "refinement check") -> ContractReport:
    """§4.1 compatibility: does ``concrete`` fit ``abstract``'s envelope?

    For every probe input, the worst case of the concrete (composed,
    lower-level) interface must not exceed the worst case promised by the
    abstract (higher-level) interface.  This is the "first-cut answer on
    whether modules are compatible with each other" run before any
    implementation exists.
    """
    contract = UpperBoundContract(abstract, name=name, slack=slack)
    return contract.check(concrete, inputs, env=env)
