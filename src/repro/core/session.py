"""The unified evaluation pipeline: sessions, hooks and span tracing.

Every layer of the Fig. 2 stack evaluates energy interfaces — the gateway
prices requests, the cluster scheduler compares placements, the
autoscaler scores replica counts, tools re-evaluate whole stacks — and
before this module each of them re-invented the plumbing: loose
``mode``/``env``/``max_traces`` kwargs, ad-hoc memoization bolted onto
one call site, no visibility into which sub-interfaces a prediction
flowed through.

:class:`EvalSession` carries everything one evaluation (or a whole run of
evaluations) needs:

* the default **mode** and an **ECV environment overlay**,
* trace/Monte-Carlo **budgets** (``max_traces``, ``n_samples``),
* a **seeded RNG** so ``"sample"`` mode and the Monte-Carlo fallback are
  reproducible end to end — two sessions with the same seed agree,
* a **hook chain**: :class:`MemoHook` (memoization at *any* layer, not
  just the serving gateway), :class:`SpanRecorder` (per-request energy
  call trees) and :class:`AccountingHook` (evaluation/trace budget
  accounting).

Spans (:class:`EvalSpan`) mirror the probabilistic call-tree attribution
of per-call-tree energy profilers: every nested interface call records
its layer, resource, method, abstract input, ECV reads, trace count,
cache hits and aggregated outcome.  :func:`render_span_tree` prints the
tree; :func:`chrome_trace` exports it as Chrome-trace JSON (open in
``chrome://tracing`` / Perfetto, with predicted energy as the time axis).
"""

from __future__ import annotations

import json
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

import numpy as np

from repro.core.distributions import EnergyDistribution, as_distribution
from repro.core.ecv import (
    ECV,
    BernoulliECV,
    CategoricalECV,
    ContinuousECV,
    ECVEnvironment,
    FixedECV,
    UniformIntECV,
)
from repro.core.errors import BudgetExceeded, EvaluationError
from repro.core.interface import (
    _ACTIVE_SESSION,
    _coerce_env,
    _combine_distribution,
    _combine_expected,
    _FixedContext,
    _NotEnumerable,
    _run_in_context,
    _SamplingContext,
    EnergyCall,
    enumerate_traces,
)
from repro.core.mcengine import DEFAULT_ENTROPY, MCEngine, resolve_engine
from repro.core.policy import Policy
from repro.core.predict import resolve_backend
from repro.core.units import AbstractEnergy, Energy

__all__ = [
    "EvalSession",
    "EvalRequest",
    "EvalHook",
    "MemoHook",
    "SpanRecorder",
    "AccountingHook",
    "EvalSpan",
    "render_span_tree",
    "chrome_trace",
    "layer_breakdown",
    "ecv_fingerprint",
    "env_fingerprint",
    "DEFAULT_P_QUANTUM",
]

#: Default quantum for probability/parameter rounding in fingerprints.
DEFAULT_P_QUANTUM = 1.0 / 64.0

#: Cap on distinct ECV values remembered per span (display, not truth).
_MAX_ECV_VALUES = 8


# ---------------------------------------------------------------------------
# Environment fingerprints (moved here from repro.serving.evalcache so any
# layer can memoize; the serving module re-exports them unchanged).
# ---------------------------------------------------------------------------

def _quantise(value: float, quantum: float) -> float:
    return round(round(float(value) / quantum) * quantum, 12)


def ecv_fingerprint(ecv: ECV, p_quantum: float = DEFAULT_P_QUANTUM) -> tuple:
    """A stable, hashable summary of an ECV's distribution.

    Distribution parameters are quantised so a hit rate drifting from
    0.912 to 0.913 does not invalidate memoized evaluations, while a real
    regime change (a new quantum) does.
    """
    if isinstance(ecv, BernoulliECV):
        return ("bern", _quantise(ecv.p, p_quantum))
    if isinstance(ecv, FixedECV):
        return ("fixed", ecv.value)
    if isinstance(ecv, CategoricalECV):
        return ("cat", tuple((value, _quantise(p, p_quantum))
                             for value, p in ecv.support()))
    if isinstance(ecv, UniformIntECV):
        return ("unifint", ecv.low, ecv.high)
    if isinstance(ecv, ContinuousECV):
        return ("cont", ecv.low, ecv.high)
    # Unknown ECV kinds fall back to their repr; correct as long as the
    # repr covers the distribution parameters.
    return ("repr", repr(ecv))


def env_fingerprint(bindings: Mapping[str, Any] | ECVEnvironment | None,
                    p_quantum: float = DEFAULT_P_QUANTUM) -> tuple:
    """Fingerprint an ECV-binding mapping (name -> value or ECV)."""
    if isinstance(bindings, ECVEnvironment):
        bindings = bindings.bindings
    if not bindings:
        return ()
    items = []
    for name in sorted(bindings):
        value = bindings[name]
        if isinstance(value, ECV):
            items.append((name,) + ecv_fingerprint(value, p_quantum))
        else:
            items.append((name, "val", value))
    return tuple(items)


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

def _mean_joules(value: Any) -> float | None:
    """The expected Joules of an interface-method outcome, if concrete."""
    if isinstance(value, AbstractEnergy):
        return None
    if isinstance(value, Energy):
        value = value.as_joules
    if isinstance(value, np.ndarray):
        # A vector-valued outcome from a batched Monte Carlo pass: its
        # expected Joules is the mean over the sample column.
        return float(np.mean(value)) if value.size else None
    if isinstance(value, EnergyDistribution):
        return float(value.mean())
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _upper_joules(value: Any) -> float | None:
    """The upper bound of an outcome (worst-case aggregation)."""
    if isinstance(value, AbstractEnergy):
        return None
    if isinstance(value, Energy):
        value = value.as_joules
    if isinstance(value, np.ndarray):
        return float(np.max(value)) if value.size else None
    if isinstance(value, EnergyDistribution):
        return float(value.upper_bound())
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


@dataclass
class EvalSpan:
    """One node of the energy call tree built during an evaluation.

    A span aggregates every enumerated trace (or Monte-Carlo sample) of
    one nested interface call: ``probability`` is the total trace weight
    that reached the call, ``value_j`` the probability-weighted expected
    Joules (the max across traces in ``worst`` mode) and ``ecv_reads``
    the ECV values observed while the span was open.  ``measured_j`` is
    filled in by :mod:`repro.measurement.meter` when measured energy is
    attached for divergence reporting.
    """

    name: str
    method: str
    args: tuple = ()
    layer: str | None = None
    resource: str | None = None
    mode: str = "expected"
    probability: float = 0.0
    n_traces: int = 0
    value_j: float | None = None
    cache_hit: bool = False
    measured_j: float | None = None
    measured_channel: str | None = None
    ecv_reads: dict[str, list] = field(default_factory=dict)
    children: list["EvalSpan"] = field(default_factory=list)
    #: Free-form diagnostics surfaced by the evaluation machinery (e.g.
    #: why a parallel run fell back in-process, which faults fired).
    notes: list[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        """``interface.method`` for display."""
        return f"{self.name}.{self.method}"

    @property
    def children_joules(self) -> float:
        """Sum of concrete child energies."""
        return sum(child.value_j for child in self.children
                   if child.value_j is not None)

    @property
    def self_joules(self) -> float | None:
        """This span's exclusive energy (value minus its children)."""
        if self.value_j is None:
            return None
        return self.value_j - self.children_joules

    @property
    def divergence(self) -> float | None:
        """Relative predicted-vs-measured error, when both are known."""
        if self.measured_j is None or self.value_j is None:
            return None
        if self.measured_j == 0.0:
            return None
        return abs(self.value_j - self.measured_j) / self.measured_j

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, label: str) -> "EvalSpan | None":
        """First span in the subtree whose :attr:`label` matches."""
        for span in self.walk():
            if span.label == label:
                return span
        return None

    def to_dict(self) -> dict:
        """A JSON-friendly rendering of the subtree."""
        return {
            "name": self.name,
            "method": self.method,
            "args": [repr(a) for a in self.args],
            "layer": self.layer,
            "resource": self.resource,
            "mode": self.mode,
            "probability": self.probability,
            "n_traces": self.n_traces,
            "value_j": self.value_j,
            "cache_hit": self.cache_hit,
            "measured_j": self.measured_j,
            "ecv_reads": {name: list(values)
                          for name, values in self.ecv_reads.items()},
            "notes": list(self.notes),
            "children": [child.to_dict() for child in self.children],
        }


def render_span_tree(root: EvalSpan, max_depth: int | None = None) -> str:
    """Render a span tree as indented text (one span per line)."""
    lines: list[str] = []

    def visit(span: EvalSpan, prefix: str, tail: bool, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        connector = "" if not prefix and depth == 0 else \
            ("└─ " if tail else "├─ ")
        parts = [f"{span.label}"]
        if span.layer:
            parts.append(f"[{span.layer}]")
        if span.args:
            rendered = ", ".join(repr(a) for a in span.args)
            parts.append(f"({rendered})")
        if span.value_j is not None:
            parts.append(f"{span.value_j:.6g} J")
        if span.mode in ("expected", "distribution") and span.n_traces:
            parts.append(f"p={span.probability:.3g}")
        if span.n_traces:
            parts.append(f"traces={span.n_traces}")
        if span.cache_hit:
            parts.append("(cached)")
        if span.measured_j is not None:
            parts.append(f"measured={span.measured_j:.6g} J")
            if span.divergence is not None:
                parts.append(f"div={span.divergence:.1%}")
        for note in span.notes:
            parts.append(f"!{note}")
        lines.append(prefix + connector + " ".join(parts))
        child_prefix = prefix + ("" if depth == 0 and not prefix else
                                 ("   " if tail else "│  "))
        for index, child in enumerate(span.children):
            visit(child, child_prefix, index == len(span.children) - 1,
                  depth + 1)

    visit(root, "", True, 0)
    return "\n".join(lines)


def chrome_trace(roots: EvalSpan | list[EvalSpan],
                 joules_per_tick: float = 1e-6) -> dict:
    """Export span trees in Chrome-trace ("traceEvents") JSON format.

    Spans have no wall-clock timestamps — predictions happen before any
    execution — so the *time axis is predicted energy*: one tick per
    ``joules_per_tick`` Joules (default: 1 tick = 1 µJ).  Children are
    laid inside their parent's interval in order, which renders the call
    tree as a flame graph of energy.
    """
    if isinstance(roots, EvalSpan):
        roots = [roots]
    events: list[dict] = []

    def width(span: EvalSpan) -> float:
        if span.value_j is not None and span.value_j > 0:
            return span.value_j / joules_per_tick
        nested = sum(width(child) for child in span.children)
        return max(nested, 1.0)

    def emit(span: EvalSpan, start: float) -> float:
        duration = width(span)
        args: dict[str, Any] = {
            "mode": span.mode,
            "probability": span.probability,
            "n_traces": span.n_traces,
            "input": [repr(a) for a in span.args],
        }
        if span.resource:
            args["resource"] = span.resource
        if span.cache_hit:
            args["cache_hit"] = True
        if span.value_j is not None:
            args["predicted_joules"] = span.value_j
        if span.measured_j is not None:
            args["measured_joules"] = span.measured_j
        if span.ecv_reads:
            args["ecv_reads"] = {name: [repr(v) for v in values]
                                 for name, values in span.ecv_reads.items()}
        events.append({
            "name": span.label,
            "cat": span.layer or "interface",
            "ph": "X",
            "ts": start,
            "dur": duration,
            "pid": 1,
            "tid": 1,
            "args": args,
        })
        cursor = start
        for child in span.children:
            cursor = emit(child, cursor)
        return start + duration

    cursor = 0.0
    for root in roots:
        cursor = emit(root, cursor)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"time_axis": f"predicted energy, "
                                   f"1 tick = {joules_per_tick} J"},
    }


def layer_breakdown(roots: EvalSpan | list[EvalSpan]) -> dict[str, float]:
    """Exclusive predicted Joules per layer across one or more span trees.

    Each span contributes its *self* energy (value minus children) to its
    layer, so layers sum to the roots' totals; spans with no layer label
    are grouped under ``"(unlabelled)"``.
    """
    if isinstance(roots, EvalSpan):
        roots = [roots]
    totals: dict[str, float] = {}
    for root in roots:
        for span in root.walk():
            exclusive = span.self_joules
            if exclusive is None:
                continue
            key = span.layer or "(unlabelled)"
            totals[key] = totals.get(key, 0.0) + exclusive
    return totals


# ---------------------------------------------------------------------------
# Hooks
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EvalRequest:
    """What is being evaluated — the identity hooks key on."""

    interface_name: str
    method: str
    args: tuple
    mode: str
    fingerprint: Hashable

    def key(self) -> tuple:
        return (self.interface_name, self.method, self.args, self.mode,
                self.fingerprint)


class EvalHook:
    """Base class for session hooks; every callback is optional."""

    def before_evaluate(self, request: EvalRequest) -> tuple[bool, Any]:
        """Return ``(True, value)`` to short-circuit the evaluation."""
        return (False, None)

    def after_evaluate(self, request: EvalRequest, value: Any,
                       cached: bool) -> None:
        """Called after every keyed evaluation (cached or computed)."""

    def on_trace(self, weight: float, value: Any) -> None:
        """Called once per enumerated trace / Monte-Carlo sample."""

    def on_batch(self, n: int, value: Any) -> None:
        """Called once per *batched* Monte-Carlo evaluation.

        ``n`` is the number of samples the batch stands for and ``value``
        their empirical distribution.  The default treats the batch as a
        single full-weight trace so hooks written before batching keep
        observing every evaluation; hooks that count work (budgets)
        override this to account for all ``n`` samples.
        """
        self.on_trace(1.0, value)


def _poisoned_value(value: Any) -> bool:
    """True when an evaluation result carries NaN Joules."""
    if isinstance(value, EnergyDistribution):
        mean = float(value.mean())
        return mean != mean
    joules = getattr(value, "as_joules", None)
    if joules is not None:
        joules = float(joules)
        return joules != joules
    if isinstance(value, (int, float)):
        return float(value) != float(value)
    return False


class MemoHook(EvalHook):
    """Session-scoped LRU memoization of interface evaluations.

    The serving gateway's evaluation cache, generalised: *any* layer that
    evaluates through a session carrying this hook gets memoized
    sub-evaluations.  Keys combine the interface name, method, abstract
    input, evaluation mode and an environment fingerprint (see
    :func:`env_fingerprint`); results are immutable, so sharing is safe.
    """

    def __init__(self, max_entries: int = 4096,
                 p_quantum: float = DEFAULT_P_QUANTUM) -> None:
        if max_entries <= 0:
            raise EvaluationError(
                f"memoization needs a positive capacity, got {max_entries}")
        self.max_entries = max_entries
        self.p_quantum = p_quantum
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- raw store access (EvalCache and EvalSession.memoized use these) ----
    def lookup(self, key: Hashable) -> tuple[bool, Any]:
        """``(hit, value)``; unhashable keys count as misses."""
        try:
            value = self._entries[key]
        except (KeyError, TypeError):
            self.misses += 1
            return (False, None)
        self.hits += 1
        self._entries.move_to_end(key)
        return (True, value)

    def store(self, key: Hashable, value: Any) -> None:
        """Insert, evicting LRU entries; unhashable keys are dropped.

        Poisoned results (NaN Joules — a garbage hardware reading, or an
        injected one) are never memoized: a cache that remembers garbage
        serves it long after the fault has passed, and the degradation
        ladder treats cached values as known-good.
        """
        if _poisoned_value(value):
            return
        try:
            self._entries[key] = value
        except TypeError:
            return
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    # -- hook protocol -------------------------------------------------------
    def before_evaluate(self, request: EvalRequest) -> tuple[bool, Any]:
        return self.lookup(request.key())

    def after_evaluate(self, request: EvalRequest, value: Any,
                       cached: bool) -> None:
        if not cached:
            self.store(request.key(), value)

    # -- statistics ----------------------------------------------------------
    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def stats(self) -> dict[str, float]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (f"MemoHook(entries={len(self._entries)}, "
                f"hit_rate={self.hit_rate:.2%})")


class AccountingHook(EvalHook):
    """Counts evaluations and traces — the session's budget accountant.

    Resource managers use it to bound how much prediction work a control
    decision may spend (the "asking must be nearly free" requirement for
    online use) and to attribute evaluation cost per interface method.
    """

    def __init__(self, max_evaluations: int | None = None) -> None:
        self.max_evaluations = max_evaluations
        self.evaluations = 0
        self.cached_evaluations = 0
        self.traces = 0
        self.by_method: dict[str, int] = {}

    def before_evaluate(self, request: EvalRequest) -> tuple[bool, Any]:
        if (self.max_evaluations is not None
                and self.evaluations >= self.max_evaluations):
            raise BudgetExceeded(
                f"evaluation budget exhausted: {self.evaluations} "
                f"evaluations (limit {self.max_evaluations})")
        return (False, None)

    def after_evaluate(self, request: EvalRequest, value: Any,
                       cached: bool) -> None:
        self.evaluations += 1
        if cached:
            self.cached_evaluations += 1
        label = f"{request.interface_name}.{request.method}"
        self.by_method[label] = self.by_method.get(label, 0) + 1

    def on_trace(self, weight: float, value: Any) -> None:
        self.traces += 1

    def on_batch(self, n: int, value: Any) -> None:
        # A batch is n samples' worth of work: budgets must not get
        # cheaper just because the engine vectorized the loop.
        self.traces += int(n)

    def stats(self) -> dict[str, float]:
        return {
            "evaluations": self.evaluations,
            "cached_evaluations": self.cached_evaluations,
            "traces": self.traces,
        }


# -- span recording ----------------------------------------------------------

class _ObsNode:
    """One trace's observation of one interface call (pre-aggregation)."""

    __slots__ = ("name", "method", "args", "value", "ecv_reads", "children",
                 "cache_hit", "layer", "resource")

    def __init__(self, name: str, method: str, args: tuple,
                 layer: str | None = None,
                 resource: str | None = None) -> None:
        self.name = name
        self.method = method
        self.args = args
        self.layer = layer
        self.resource = resource
        self.value: Any = None
        self.ecv_reads: dict[str, list] = {}
        self.children: list[_ObsNode] = []
        self.cache_hit = False


def _args_key(args: tuple) -> Hashable:
    try:
        hash(args)
        return args
    except TypeError:
        return repr(args)


class _AggNode:
    """A span aggregated across every trace of one evaluation."""

    def __init__(self, name: str, method: str, args: tuple,
                 layer: str | None, resource: str | None) -> None:
        self.name = name
        self.method = method
        self.args = args
        self.layer = layer
        self.resource = resource
        self.weight = 0.0
        self.n_traces = 0
        self.weighted_j = 0.0
        self.worst_j: float | None = None
        self.concrete = True
        self.cache_hit = False
        self.ecv_reads: dict[str, list] = {}
        self.notes: list[str] = []
        self.children: OrderedDict[Hashable, _AggNode] = OrderedDict()

    def observe(self, node: _ObsNode, weight: float) -> None:
        self.weight += weight
        self.n_traces += 1
        self.cache_hit = self.cache_hit or node.cache_hit
        mean = _mean_joules(node.value)
        if mean is None:
            self.concrete = False
        else:
            self.weighted_j += weight * mean
            upper = _upper_joules(node.value)
            if upper is not None:
                self.worst_j = (upper if self.worst_j is None
                                else max(self.worst_j, upper))
        for ecv_name, values in node.ecv_reads.items():
            seen = self.ecv_reads.setdefault(ecv_name, [])
            for value in values:
                if value not in seen and len(seen) < _MAX_ECV_VALUES:
                    seen.append(value)
        for child in node.children:
            key = (child.name, child.method, _args_key(child.args))
            agg = self.children.get(key)
            if agg is None:
                agg = _AggNode(child.name, child.method, child.args,
                               child.layer, child.resource)
                self.children[key] = agg
            agg.observe(child, weight)

    def to_span(self, mode: str) -> EvalSpan:
        if not self.concrete:
            value = None
        elif mode in ("worst", "best"):
            value = self.worst_j
        else:
            value = self.weighted_j
        span = EvalSpan(
            name=self.name,
            method=self.method,
            args=self.args,
            layer=self.layer,
            resource=self.resource,
            mode=mode,
            probability=self.weight,
            n_traces=self.n_traces,
            value_j=value,
            cache_hit=self.cache_hit,
            ecv_reads={k: list(v) for k, v in self.ecv_reads.items()},
            children=[child.to_span(mode) for child in
                      self.children.values()],
            notes=list(self.notes),
        )
        return span


class _EvalFrame:
    """Per-evaluation recording state (a stack entry for nested evals)."""

    def __init__(self, name: str, method: str, args: tuple, mode: str,
                 layer: str | None, resource: str | None) -> None:
        self.agg = _AggNode(name, method, args, layer, resource)
        self.mode = mode
        self.stack: list[_ObsNode] | None = None  # set while a trace runs
        self.trace_root: _ObsNode | None = None


class SpanRecorder(EvalHook):
    """Builds :class:`EvalSpan` call trees as evaluations run.

    Attach one to a session (``EvalSession(hooks=[SpanRecorder()])``);
    every evaluation appends an aggregated root span to :attr:`roots`.
    Nested interface calls (including through the composition combinators
    and through further ``session.evaluate`` calls inside interface
    methods) become child spans, merged across all enumerated traces.
    """

    def __init__(self) -> None:
        self.roots: list[EvalSpan] = []
        self._frames: list[_EvalFrame] = []

    # -- session-facing protocol ---------------------------------------------
    def begin_evaluation(self, name: str, method: str, args: tuple,
                         mode: str, layer: str | None = None,
                         resource: str | None = None) -> None:
        self._frames.append(_EvalFrame(name, method, args, mode, layer,
                                       resource))

    def end_evaluation(self, final_value: Any) -> EvalSpan:
        frame = self._frames.pop()
        span = frame.agg.to_span(frame.mode)
        # The combined result (e.g. the exact expected value) is more
        # faithful than re-aggregating per-trace outcomes; prefer it.
        final = _mean_joules(final_value)
        if frame.mode in ("worst", "best"):
            final = _upper_joules(final_value)
        if final is not None:
            span.value_j = final
        span.probability = min(span.probability, 1.0)
        if self._frames:
            # A nested evaluation inside an outer trace: surface its
            # aggregated tree as one child observation of the outer span.
            self._attach_nested(span)
        else:
            self.roots.append(span)
        return span

    def _attach_nested(self, span: EvalSpan) -> None:
        frame = self._frames[-1]
        if frame.stack is None:
            return

        def to_obs(node: EvalSpan) -> _ObsNode:
            obs = _ObsNode(node.name, node.method, node.args,
                           node.layer, node.resource)
            obs.value = (Energy(node.value_j)
                         if node.value_j is not None else None)
            obs.cache_hit = node.cache_hit
            obs.ecv_reads = {k: list(v) for k, v in node.ecv_reads.items()}
            obs.children = [to_obs(child) for child in node.children]
            return obs

        frame.stack[-1].children.append(to_obs(span))

    def record_cached(self, name: str, method: str, args: tuple, mode: str,
                      value: Any, layer: str | None = None,
                      resource: str | None = None) -> None:
        """Record a memo-hit evaluation as a leaf span (no re-execution)."""
        span = EvalSpan(name=name, method=method, args=args, layer=layer,
                        resource=resource, mode=mode, probability=1.0,
                        n_traces=0, value_j=_mean_joules(value),
                        cache_hit=True)
        if self._frames and self._frames[-1].stack is not None:
            obs = _ObsNode(name, method, args, layer, resource)
            obs.value = value
            obs.cache_hit = True
            self._frames[-1].stack[-1].children.append(obs)
        else:
            self.roots.append(span)

    def begin_trace(self) -> None:
        if not self._frames:
            return
        frame = self._frames[-1]
        frame.trace_root = _ObsNode("<trace>", "", ())
        frame.stack = [frame.trace_root]

    def abort_trace(self) -> None:
        """Discard a begun trace (a batched pass that fell back)."""
        if not self._frames:
            return
        frame = self._frames[-1]
        frame.trace_root = None
        frame.stack = None

    def end_trace(self, weight: float, value: Any) -> None:
        if not self._frames:
            return
        frame = self._frames[-1]
        if frame.trace_root is None:
            return
        frame.trace_root.value = value
        # Merge: if the trace body was a single top-level interface call
        # matching the frame (the common case — evaluate(iface, method)),
        # fold it into the frame's aggregate root so the tree does not
        # show a redundant wrapper level.
        root = frame.trace_root
        if (len(root.children) == 1
                and root.children[0].name == frame.agg.name
                and root.children[0].method == frame.agg.method):
            frame.agg.observe(root.children[0], weight)
        else:
            root.name = frame.agg.name
            root.method = frame.agg.method
            root.args = frame.agg.args
            frame.agg.observe(root, weight)
        frame.trace_root = None
        frame.stack = None

    # -- instrumentation-facing protocol ------------------------------------
    def push_span(self, owner: Any, method: str, args: tuple) -> bool:
        """Open a span for a nested interface call; True when recording."""
        if not self._frames:
            return False
        frame = self._frames[-1]
        if frame.stack is None:
            return False
        labels = getattr(owner, "span_labels", None)
        layer = resource = None
        if labels:
            layer, resource = labels
        node = _ObsNode(getattr(owner, "name", type(owner).__name__),
                        method, args, layer, resource)
        frame.stack[-1].children.append(node)
        frame.stack.append(node)
        return True

    def set_outcome(self, value: Any) -> None:
        frame = self._frames[-1]
        if frame.stack is not None and len(frame.stack) > 1:
            frame.stack[-1].value = value

    def pop_span(self) -> None:
        frame = self._frames[-1]
        if frame.stack is not None and len(frame.stack) > 1:
            frame.stack.pop()

    def on_ecv_read(self, qualified: str, value: Any) -> None:
        if not self._frames:
            return
        frame = self._frames[-1]
        if frame.stack is None:
            return
        reads = frame.stack[-1].ecv_reads.setdefault(qualified, [])
        if value not in reads and len(reads) < _MAX_ECV_VALUES:
            reads.append(value)

    def annotate(self, note: str) -> None:
        """Attach a diagnostic note to the innermost open evaluation span.

        Used by the evaluation machinery to surface events that would
        otherwise be invisible in the tree — a parallel engine falling
        back in-process because the call would not pickle, a shard being
        recomputed after a worker died, an injected fault.
        """
        if not self._frames:
            return
        notes = self._frames[-1].agg.notes
        if note not in notes:
            notes.append(note)

    # -- results -------------------------------------------------------------
    @property
    def last_root(self) -> EvalSpan | None:
        """The most recently completed evaluation's span tree."""
        return self.roots[-1] if self.roots else None

    def clear(self) -> None:
        self.roots.clear()

    def to_json(self, **kwargs: Any) -> str:
        """All recorded trees as Chrome-trace JSON text."""
        return json.dumps(chrome_trace(self.roots, **kwargs))

    def __repr__(self) -> str:
        return f"SpanRecorder(roots={len(self.roots)})"


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------

class EvalSession:
    """Everything an evaluation needs, threaded through every layer.

    A session fixes the evaluation *mode*, an ECV environment overlay,
    trace/Monte-Carlo budgets, a seeded RNG, the Monte Carlo *engine*
    and a hook chain.  Layers thread one session through nested
    evaluations so that memoization, span recording and accounting see
    the whole call tree — per-call-site kwargs (`mode=`, `env=`, …)
    still work and override the session defaults, and code that never
    mentions sessions keeps working: the framework creates a transparent
    default session per evaluation.

    The evaluation-budget defaults live here, and only here: every other
    entry point (the canonical :func:`repro.core.interface.evaluate`,
    trace enumeration, sampling-based quantiles) resolves an unset
    budget to these class attributes.
    """

    #: Safety cap on the number of enumerated ECV traces per evaluation.
    DEFAULT_MAX_TRACES = 4096

    #: Default Monte-Carlo sample count when enumeration is impossible.
    DEFAULT_N_SAMPLES = 4000

    #: Default budget for sampling-based quantile approximation outside
    #: any session (:meth:`repro.core.distributions.EnergyDistribution.quantile`).
    DEFAULT_QUANTILE_SAMPLES = 20000

    def __init__(self, *,
                 mode: str = "expected",
                 env: ECVEnvironment | Mapping[str, Any] | None = None,
                 seed: int | None = None,
                 rng: np.random.Generator | None = None,
                 n_samples: int | None = None,
                 max_traces: int | None = None,
                 engine: str | MCEngine | None = None,
                 backend: "str | Any | None" = None,
                 hooks: list[EvalHook] | None = None,
                 p_quantum: float = DEFAULT_P_QUANTUM,
                 policy: Policy | None = None) -> None:
        # A declarative Policy seeds the per-knob parameters; explicit
        # keywords win over it (they are the more specific spelling).
        self.policy = policy
        if policy is not None:
            engine = engine if engine is not None else policy.mc_engine
            backend = backend if backend is not None else policy.backend
            n_samples = (n_samples if n_samples is not None
                         else policy.n_samples)
            max_traces = (max_traces if max_traces is not None
                          else policy.max_traces)
        self.mode = mode
        self.env = _coerce_env(env)
        self.seed = seed
        self._rng_external = rng is not None
        if rng is not None:
            self._rng: np.random.Generator | None = rng
        elif seed is not None:
            self._rng = np.random.default_rng(seed)
        else:
            self._rng = None
        self.n_samples = (self.DEFAULT_N_SAMPLES if n_samples is None
                          else int(n_samples))
        self.max_traces = (self.DEFAULT_MAX_TRACES if max_traces is None
                           else int(max_traces))
        self.engine = resolve_engine(engine)
        self.backend = resolve_backend(backend)
        self.p_quantum = p_quantum
        self.hooks: list[EvalHook] = list(hooks or [])
        self._index_hooks()
        self.stats = {"evaluations": 0, "traces": 0, "memo_hits": 0}

    # -- hook plumbing --------------------------------------------------------
    # recorder/memo are cached because instrumented E_* methods consult
    # them on every nested call of every enumerated trace.
    @property
    def recorder(self) -> SpanRecorder | None:
        """The first span recorder in the hook chain, if any."""
        return self._recorder

    @property
    def memo(self) -> MemoHook | None:
        """The first memoization hook in the hook chain, if any."""
        return self._memo

    @property
    def fault_hook(self) -> "EvalHook | None":
        """The first fault-injection hook in the chain, if any.

        Duck-typed on the ``is_fault_hook`` marker so the core does not
        import :mod:`repro.faults`; the engines consult it for
        engine-level fault sites (shard death).
        """
        return self._fault_hook

    def _index_hooks(self) -> None:
        self._recorder = next((hook for hook in self.hooks
                               if isinstance(hook, SpanRecorder)), None)
        self._memo = next((hook for hook in self.hooks
                           if isinstance(hook, MemoHook)), None)
        self._fault_hook = next(
            (hook for hook in self.hooks
             if getattr(hook, "is_fault_hook", False)), None)

    def add_hook(self, hook: EvalHook) -> EvalHook:
        self.hooks.append(hook)
        self._index_hooks()
        return hook

    # -- internal notifications (called by the evaluation contexts) ----------
    def _on_ecv_read(self, qualified: str, value: Any) -> None:
        recorder = self.recorder
        if recorder is not None:
            recorder.on_ecv_read(qualified, value)

    def _on_trace_begin(self) -> None:
        recorder = self.recorder
        if recorder is not None:
            recorder.begin_trace()

    def _on_trace_end(self, weight: float, value: Any) -> None:
        self.stats["traces"] += 1
        for hook in self.hooks:
            if isinstance(hook, SpanRecorder):
                hook.end_trace(weight, value)
            else:
                hook.on_trace(weight, value)

    def _on_batch(self, n: int, value: Any) -> None:
        """A batched Monte-Carlo pass finished: ``n`` samples in one event.

        The recorder closes the (single) trace it opened for the batch
        with the full empirical distribution; every other hook gets the
        first-class ``on_batch`` event.  Trace statistics count all
        ``n`` samples, matching a serial run.
        """
        self.stats["traces"] += int(n)
        for hook in self.hooks:
            if isinstance(hook, SpanRecorder):
                hook.end_trace(1.0, value)
            else:
                hook.on_batch(n, value)

    def _abort_trace(self) -> None:
        """Discard a begun trace (a batched pass is falling back)."""
        recorder = self.recorder
        if recorder is not None:
            recorder.abort_trace()

    def _annotate(self, note: str) -> None:
        """Surface a machinery diagnostic on the open span, if recording."""
        recorder = self.recorder
        if recorder is not None:
            recorder.annotate(note)

    # -- RNG ------------------------------------------------------------------
    def _sampling_rng(self, override: np.random.Generator | None
                      ) -> np.random.Generator:
        if override is not None:
            return override
        if self._rng is not None:
            return self._rng
        return np.random.default_rng()

    def _mc_entropy(self, override: np.random.Generator | None) -> int:
        """The root entropy for one Monte Carlo evaluation's columns.

        Every engine derives all of an evaluation's randomness from this
        one integer (see :mod:`repro.core.mcengine`), which is what makes
        serial, vectorized and sharded runs replay-identical:

        * an explicit ``rng=`` override contributes one draw (so equal-
          state generators give equal results, and a stateful generator
          varies call to call exactly as it used to),
        * a seeded session uses its seed,
        * a session built around an external generator draws from it,
        * an unseeded session uses the pinned historical constant, so it
          stays deterministic call to call.
        """
        if override is not None:
            return int(override.integers(0, 2 ** 63))
        if self.seed is not None:
            return int(self.seed)
        if self._rng_external and self._rng is not None:
            return int(self._rng.integers(0, 2 ** 63))
        return DEFAULT_ENTROPY

    # -- the pipeline ---------------------------------------------------------
    def evaluate(self, interface: Any, method: str | Callable[..., Any],
                 *args: Any,
                 mode: str | None = None,
                 env: ECVEnvironment | Mapping[str, Any] | None = None,
                 fingerprint: Hashable | None = None,
                 rng: np.random.Generator | None = None,
                 n_samples: int | None = None,
                 max_traces: int | None = None,
                 engine: str | MCEngine | None = None,
                 **kwargs: Any) -> Any:
        """Deprecated: use :func:`repro.core.interface.evaluate`.

        ``session.evaluate(interface, method, *args, ...)`` is one of the
        three pre-unification entry points.  It keeps returning exactly
        what it used to, but new code should build an
        :class:`~repro.core.interface.EnergyCall` and go through the one
        canonical function::

            evaluate(interface(method, *args), session=session, ...)
        """
        warnings.warn(
            "EvalSession.evaluate(interface, method, ...) is deprecated; "
            "use repro.core.interface.evaluate(interface(method, *args), "
            "session=session, ...) instead",
            DeprecationWarning, stacklevel=2)
        call = EnergyCall(interface, method, args,
                          tuple(sorted(kwargs.items())))
        return self._evaluate_call(call, mode=mode, env=env,
                                   fingerprint=fingerprint, rng=rng,
                                   n_samples=n_samples,
                                   max_traces=max_traces, engine=engine)

    def _evaluate_call(self, call: EnergyCall, *,
                       mode: str | None = None,
                       env: ECVEnvironment | Mapping[str, Any] | None = None,
                       fingerprint: Hashable | None = None,
                       rng: np.random.Generator | None = None,
                       n_samples: int | None = None,
                       max_traces: int | None = None,
                       engine: str | MCEngine | None = None) -> Any:
        """Evaluate an :class:`EnergyCall` through the session.

        This is the keyed entry point: the hook chain can memoize the
        result (the key covers interface name, method, abstract input,
        mode and the merged environment's fingerprint) and the recorder
        labels the root span with the interface's stack position.
        """
        interface = call.interface
        method_name = call.method_name
        resolved_mode = mode if mode is not None else self.mode
        merged_env = self.env if env is None else \
            self.env.extended(_coerce_env(env).bindings)
        interface_name = getattr(interface, "name", type(interface).__name__)
        labels = getattr(interface, "span_labels", None) or (None, None)
        if not self.hooks:
            # No hooks -> nothing keys on the request; skip fingerprinting.
            return self._run(call, resolved_mode, merged_env, rng,
                             n_samples, max_traces,
                             label=(interface_name, method_name, call.args,
                                    labels[0], labels[1]),
                             engine=engine, call=call)
        if fingerprint is None:
            fingerprint = env_fingerprint(merged_env, self.p_quantum)
        key_args = call.args if not call.kwargs else \
            call.args + call.kwargs
        request = EvalRequest(
            interface_name=interface_name,
            method=method_name,
            args=key_args,
            mode=resolved_mode,
            fingerprint=fingerprint,
        )
        for hook in self.hooks:
            hit, value = hook.before_evaluate(request)
            if hit:
                self.stats["memo_hits"] += 1
                recorder = self.recorder
                if recorder is not None:
                    recorder.record_cached(request.interface_name,
                                           method_name, call.args,
                                           resolved_mode, value,
                                           labels[0], labels[1])
                for other in self.hooks:
                    other.after_evaluate(request, value, True)
                return value
        value = self._run(call, resolved_mode, merged_env, rng, n_samples,
                          max_traces,
                          label=(request.interface_name, method_name,
                                 call.args, labels[0], labels[1]),
                          engine=engine, call=call)
        for hook in self.hooks:
            hook.after_evaluate(request, value, False)
        return value

    def evaluate_fn(self, fn: Callable[[], Any], *,
                    mode: str | None = None,
                    env: ECVEnvironment | Mapping[str, Any] | None = None,
                    rng: np.random.Generator | None = None,
                    n_samples: int | None = None,
                    max_traces: int | None = None,
                    engine: str | MCEngine | None = None) -> Any:
        """Deprecated: use :func:`repro.core.interface.evaluate`.

        ``session.evaluate_fn(fn, ...)`` predates the unified signature;
        the canonical spelling is ``evaluate(fn, session=session, ...)``.
        """
        warnings.warn(
            "EvalSession.evaluate_fn(fn, ...) is deprecated; use "
            "repro.core.interface.evaluate(fn, session=session, ...) "
            "instead",
            DeprecationWarning, stacklevel=2)
        return self._evaluate_fn(fn, mode=mode, env=env, rng=rng,
                                 n_samples=n_samples, max_traces=max_traces,
                                 engine=engine)

    def _evaluate_fn(self, fn: Callable[[], Any], *,
                     mode: str | None = None,
                     env: ECVEnvironment | Mapping[str, Any] | None = None,
                     rng: np.random.Generator | None = None,
                     n_samples: int | None = None,
                     max_traces: int | None = None,
                     engine: str | MCEngine | None = None) -> Any:
        """Evaluate a zero-argument callable that reads ECVs.

        The free-function form — what resource managers and tools use for
        compositions spanning several interfaces.  Not keyed, so it is
        never memoized itself (nested keyed evaluations inside ``fn``
        still are).
        """
        resolved_mode = mode if mode is not None else self.mode
        merged_env = self.env if env is None else \
            self.env.extended(_coerce_env(env).bindings)
        call = fn if isinstance(fn, EnergyCall) else None
        return self._run(fn, resolved_mode, merged_env, rng, n_samples,
                         max_traces, label=("<fn>", getattr(
                             fn, "__name__", "<lambda>"), (), None, None),
                         engine=engine, call=call)

    def memoized(self, key: tuple, fn: Callable[[], Any]) -> Any:
        """Session-scoped memoization for arbitrary manager computations.

        Not every prediction flows through an interface method — e.g. the
        CPU scheduler's per-core energy model.  ``memoized`` lets such
        code share the session's :class:`MemoHook` under an explicit key.
        """
        memo = self.memo
        if memo is None:
            return fn()
        full_key = ("@memoized",) + tuple(key)
        hit, value = memo.lookup(full_key)
        if hit:
            self.stats["memo_hits"] += 1
            return value
        value = fn()
        memo.store(full_key, value)
        return value

    # -- mode dispatch --------------------------------------------------------
    def _run(self, fn: Callable[[], Any], mode: str, env: ECVEnvironment,
             rng: np.random.Generator | None, n_samples: int | None,
             max_traces: int | None, label: tuple,
             engine: str | MCEngine | None = None,
             call: Callable[[], Any] | None = None) -> Any:
        self.stats["evaluations"] += 1
        samples = n_samples if n_samples is not None else self.n_samples
        traces_cap = max_traces if max_traces is not None else self.max_traces
        recorder = self.recorder
        if recorder is not None:
            recorder.begin_evaluation(label[0], label[1], label[2], mode,
                                      label[3], label[4])
        token = _ACTIVE_SESSION.set(self)
        try:
            value = self._dispatch(fn, mode, env, rng, samples, traces_cap,
                                   engine, call)
        except BaseException:
            if recorder is not None:
                recorder.end_evaluation(None)
            raise
        finally:
            _ACTIVE_SESSION.reset(token)
        if recorder is not None:
            recorder.end_evaluation(value)
        return value

    def _dispatch(self, fn: Callable[[], Any], mode: str,
                  env: ECVEnvironment, rng: np.random.Generator | None,
                  n_samples: int, max_traces: int,
                  engine: str | MCEngine | None = None,
                  call: Callable[[], Any] | None = None) -> Any:
        if mode == "fixed":
            self._on_trace_begin()
            value = _run_in_context(fn, _FixedContext(env, session=self))
            self._on_trace_end(1.0, value)
            return value
        if mode == "sample":
            generator = self._sampling_rng(rng)
            self._on_trace_begin()
            value = _run_in_context(
                fn, _SamplingContext(env, generator, session=self))
            self._on_trace_end(1.0, value)
            if isinstance(value, (AbstractEnergy, Energy)):
                return value
            if isinstance(value, EnergyDistribution):
                return Energy(float(value.sample(generator, 1)[0]))
            return Energy(float(value))
        if mode in ("worst", "best"):
            outcomes = enumerate_traces(fn, env, max_traces, worst_case=True,
                                        session=self)
            bounds = []
            for outcome in outcomes:
                if isinstance(outcome.value, AbstractEnergy):
                    raise EvaluationError(
                        "worst/best-case mode needs concrete energies; "
                        "ground abstract units first")
                dist = as_distribution(outcome.value)
                bounds.append(dist.upper_bound() if mode == "worst"
                              else dist.lower_bound())
            return Energy(max(bounds) if mode == "worst" else min(bounds))
        if mode not in ("expected", "distribution"):
            raise EvaluationError(
                f"unknown evaluation mode {mode!r}; expected one of "
                f"expected/distribution/worst/best/sample/fixed")
        try:
            outcomes = enumerate_traces(fn, env, max_traces, session=self)
        except _NotEnumerable:
            return self._monte_carlo(fn, env, mode, rng, n_samples,
                                     engine, call)
        if mode == "expected":
            return _combine_expected(outcomes)
        return _combine_distribution(outcomes)

    def _monte_carlo(self, fn: Callable[[], Any], env: ECVEnvironment,
                     mode: str, rng: np.random.Generator | None,
                     n_samples: int,
                     engine: str | MCEngine | None = None,
                     call: Callable[[], Any] | None = None) -> Any:
        """Delegate the Monte Carlo stage to the session's backend.

        The default :class:`~repro.core.predict.SampledBackend` runs the
        Monte Carlo engines exactly as this method historically did; the
        compiled backend answers from analytic forms or numpy kernels
        and falls back to sampling where it cannot.
        """
        return self.backend.monte_carlo(
            self, fn=fn, env=env, mode=mode, rng=rng,
            n_samples=int(n_samples), engine=engine, call=call)

    def __repr__(self) -> str:
        hooks = [type(hook).__name__ for hook in self.hooks]
        return (f"EvalSession(mode={self.mode!r}, seed={self.seed!r}, "
                f"hooks={hooks})")
