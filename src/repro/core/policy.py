"""Declarative evaluation/serving policy: one object, every knob.

PR 4 collapsed the evaluation *entry points* into one canonical
``evaluate()``; this module collapses the evaluation *knobs*.  Before,
three families of settings lived in three places — the Monte Carlo knobs
on :class:`~repro.core.session.EvalSession` (``engine``, ``n_samples``,
``max_traces``), the admission knobs on
:class:`~repro.serving.gateway.GatewayConfig` (``mc_engine``,
``admission_quantile``) and the new resilience knobs (retry, deadline,
degradation) had nowhere to live at all.  A :class:`Policy` holds all of
them declaratively and is accepted by both ``EvalSession(policy=...)``
and ``GatewayConfig(policy=...)``; the old keyword shapes keep working
through ``DeprecationWarning`` shims, the same migration pattern as
PR 4's ``evaluate()`` collapse.

The resilience sub-policies are consumed by
:class:`repro.faults.ResilientEvaluator`:

* :class:`RetryPolicy` — capped exponential backoff with deterministic
  jitter.  Backoff time is *simulated* (charged against the deadline and
  reported, never slept), so retried evaluations stay bit-reproducible.
* :class:`DeadlinePolicy` — a per-request evaluation timeout over the
  simulated latency account (injected latency + backoff).
* :class:`DegradePolicy` — the fallback ladder: cached estimate →
  closed-form/worst-mode bound → reject with a typed error.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from repro.core.errors import ServingError

__all__ = [
    "RetryPolicy",
    "DeadlinePolicy",
    "DegradePolicy",
    "Policy",
    "resolve_policy",
]

#: Valid rungs of the degradation ladder, in their canonical order.
DEGRADE_TIERS = ("cache", "bound", "reject")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``backoff_s(attempt, unit)`` returns the simulated wait before retry
    ``attempt`` (1-based); ``unit`` is a caller-supplied uniform draw in
    ``[0, 1)`` — the resilient evaluator derives it from the fault
    plan's seed so replays back off identically.
    """

    max_attempts: int = 3          # total tries, including the first
    base_delay_s: float = 0.01     # backoff after the first failure
    max_delay_s: float = 1.0       # cap on any single backoff
    jitter: float = 0.5            # +/- fraction of the backoff randomised

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServingError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ServingError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, attempt: int, unit: float = 0.5) -> float:
        """Simulated backoff before retry ``attempt`` (1-based)."""
        base = min(self.base_delay_s * (2.0 ** (attempt - 1)),
                   self.max_delay_s)
        # unit=0.5 is jitter-neutral: the spread is [-j, +j) * base.
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))


@dataclass(frozen=True)
class DeadlinePolicy:
    """Per-request evaluation timeout over the simulated latency account."""

    timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ServingError(
                f"deadline timeout must be > 0, got {self.timeout_s}")


@dataclass(frozen=True)
class DegradePolicy:
    """The fallback ladder tried, in order, once retries are exhausted.

    Tiers: ``"cache"`` (last known-good / memoized estimate for the same
    query), ``"bound"`` (closed-form worst-mode bound evaluated without
    fault injection), ``"reject"`` (raise the typed error).  A ladder
    without ``"reject"`` implicitly ends with it — the ladder must
    terminate somehow.
    """

    ladder: tuple[str, ...] = DEGRADE_TIERS

    def __post_init__(self) -> None:
        unknown = [tier for tier in self.ladder if tier not in DEGRADE_TIERS]
        if unknown:
            raise ServingError(
                f"unknown degradation tier(s) {unknown}; "
                f"valid tiers are {list(DEGRADE_TIERS)}")


@dataclass(frozen=True)
class Policy:
    """Every evaluation/serving knob, in one declarative object.

    ``None`` means "use the layer's default" — an unset field never
    overrides :class:`~repro.core.session.EvalSession` class defaults,
    so ``Policy()`` is a no-op policy.
    """

    #: Monte Carlo engine for evaluations ("serial"/"vector"/"parallel").
    mc_engine: str | None = None
    #: Prediction backend ("sampled"/"compiled"); None keeps the session
    #: default (sampled — the historical Monte Carlo behavior).
    backend: str | None = None
    #: Admission-time tail quantile (e.g. 0.95); None disables it.
    admission_quantile: float | None = None
    #: Monte Carlo sample budget; None keeps the session default.
    n_samples: int | None = None
    #: Trace-enumeration budget; None keeps the session default.
    max_traces: int | None = None
    #: Resilience: None disables retries (single attempt).
    retry: RetryPolicy | None = None
    #: Resilience: None disables the deadline check.
    deadline: DeadlinePolicy | None = None
    #: Resilience: which fallbacks to try once attempts are exhausted.
    degrade: DegradePolicy = field(default_factory=DegradePolicy)
    #: Fleet: gateway replica count; None keeps the fleet's default.
    replicas: int | None = None
    #: Fleet: balancer name ("round-robin" / "least-energy" /
    #: "power-of-two"); None keeps the fleet's default.
    balancer: str | None = None
    #: Fleet: budget-shard lease time-to-live in simulated seconds;
    #: None keeps the fleet's default.
    lease_ttl_s: float | None = None
    #: Calibration: EWMA residual tolerance before predictions count as
    #: stale; None disables calibration guarding entirely.
    calibration_tolerance: float | None = None
    #: Calibration: what admission does with a stale calibration —
    #: "widen" serves with an inflated worst-case bound, "reject" sheds.
    calibration_action: str = "widen"
    #: Calibration: worst-case bound inflation used by the "widen" action.
    calibration_widen_factor: float = 1.5
    #: Calibration: residual observations required before the guard may
    #: declare staleness (avoids tripping on startup noise).
    calibration_min_observations: int = 8

    def __post_init__(self) -> None:
        if self.replicas is not None and self.replicas < 1:
            raise ServingError(
                f"replicas must be >= 1, got {self.replicas}")
        if self.lease_ttl_s is not None and self.lease_ttl_s <= 0:
            raise ServingError(
                f"lease_ttl_s must be positive, got {self.lease_ttl_s}")
        if self.calibration_tolerance is not None \
                and self.calibration_tolerance <= 0:
            raise ServingError(
                f"calibration_tolerance must be positive, got "
                f"{self.calibration_tolerance}")
        if self.calibration_action not in ("widen", "reject"):
            raise ServingError(
                f"calibration_action must be 'widen' or 'reject', got "
                f"{self.calibration_action!r}")
        if self.calibration_widen_factor < 1.0:
            raise ServingError(
                f"calibration_widen_factor must be >= 1, got "
                f"{self.calibration_widen_factor}")
        if self.calibration_min_observations < 1:
            raise ServingError(
                f"calibration_min_observations must be >= 1, got "
                f"{self.calibration_min_observations}")

    @property
    def resilient(self) -> bool:
        """True when any resilience knob is set (retry or deadline)."""
        return self.retry is not None or self.deadline is not None


def resolve_policy(policy: Policy | None, *,
                   mc_engine: str | None = None,
                   admission_quantile: float | None = None,
                   stacklevel: int = 3) -> Policy:
    """Merge legacy per-knob keywords into a :class:`Policy`.

    The shim behind ``GatewayConfig(mc_engine=..., admission_quantile=...)``:
    explicit legacy keywords win over the policy's fields (matching the
    old behaviour where they were the only knobs) but emit a
    ``DeprecationWarning`` steering callers to ``Policy``.
    """
    resolved = policy if policy is not None else Policy()
    legacy = {key: value for key, value in
              (("mc_engine", mc_engine),
               ("admission_quantile", admission_quantile))
              if value is not None}
    if legacy:
        names = ", ".join(sorted(legacy))
        warnings.warn(
            f"passing {names} directly is deprecated; set them on a "
            f"Policy (e.g. Policy({names.replace(', ', '=..., ')}=...)) "
            f"instead",
            DeprecationWarning, stacklevel=stacklevel)
        resolved = replace(resolved, **legacy)
    return resolved
