"""Monte Carlo evaluation engines: vectorized and multi-process sampling.

§3 of the paper makes an interface's return value a *distribution* once
ECVs are bound; whenever a continuous ECV blocks exact enumeration the
evaluator falls back to Monte Carlo.  Before this module the fallback was
a per-sample Python loop — every layer above hardware paid that sampling
tax on every probabilistic answer.  This module removes it:

:class:`SerialEngine`
    The reference engine: one Python pass per sample, full per-sample
    hook events (spans, accounting) exactly like the historical loop.

:class:`VectorEngine`
    Runs the interface *once* over whole sample columns
    (:meth:`~repro.core.ecv.ECV.sample_n` bulk draws, numpy broadcasting
    for the arithmetic).  Interfaces that branch on an ECV value raise on
    the array (ambiguous truth value) and the engine transparently falls
    back to the per-sample loop **over the same columns** — results are
    bitwise-identical either way.

:class:`ParallelEngine`
    Shards the sample index range across a ``ProcessPoolExecutor``.
    Each worker rebuilds the same deterministic column store, so the
    concatenated output is bitwise-identical to a serial run regardless
    of the shard count.

Replay discipline
-----------------
All engines draw from a :class:`ColumnStore`: for every ``(qualified ECV
name, occurrence index)`` pair one full length-``n`` column is drawn from
a generator derived via ``numpy.random.SeedSequence`` spawn keys (the
keyed form of ``SeedSequence.spawn``) from a single *entropy* integer.
The entropy comes from the session (its seed, else the pinned historical
constant ``0xEC5``, else one draw from an explicit ``rng=`` override), so

* serial == vectorized == any-shard-count parallel, bitwise, and
* repeated evaluations in equal-seed sessions replay exactly.

Sharing columns across evaluations of one session also gives *common
random numbers*: comparing two candidate configurations under the same
session samples both at the same ECV draws, which reduces comparison
variance — exactly what resource managers want from "asking is free".

Per-sample draws from a non-degenerate *outcome* distribution (an
interface returning, say, :class:`~repro.core.distributions.Normal`) use
a second spawn-key family keyed by the sample index, again identical
across engines.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.core.distributions import (
    Empirical,
    EnergyDistribution,
    PointMass,
)
from repro.core.ecv import ECV, ECVEnvironment
from repro.core.errors import EvaluationError
from repro.core.interface import _BaseContext, _run_in_context
from repro.core.units import AbstractEnergy, Energy

if TYPE_CHECKING:
    from repro.core.session import EvalSession

__all__ = [
    "ColumnStore",
    "MCTask",
    "MCEngine",
    "SerialEngine",
    "VectorEngine",
    "ParallelEngine",
    "ENGINES",
    "resolve_engine",
]

#: Spawn-key tags separating the two derived-generator families.
_COLUMN_TAG = 0xC0
_OUTCOME_TAG = 0x0D

#: The pinned entropy of unseeded sessions (the historical Monte Carlo
#: seed, so unseeded evaluation stays deterministic call to call).
DEFAULT_ENTROPY = 0xEC5


def _name_key(qualified: str) -> int:
    """A stable 32-bit key for an ECV name.

    ``zlib.crc32`` rather than ``hash()`` because builtin string hashing
    is salted per process — worker processes must derive the same column
    generators as the parent.
    """
    return zlib.crc32(qualified.encode("utf-8"))


class ColumnStore:
    """Deterministic per-ECV sample columns, lazily drawn.

    One store covers one Monte Carlo evaluation of ``n`` samples: the
    column for ``(qualified, occurrence)`` holds the value the
    ``occurrence``-th read of that ECV takes in each of the ``n`` sample
    runs.  Columns are a pure function of ``(entropy, qualified,
    occurrence)``, so any process — and any engine — reconstructs
    identical draws.
    """

    def __init__(self, entropy: int, n: int) -> None:
        self.entropy = int(entropy)
        self.n = int(n)
        self._columns: dict[tuple[str, int], np.ndarray] = {}

    def column_rng(self, qualified: str, occurrence: int) -> np.random.Generator:
        seq = np.random.SeedSequence(
            self.entropy,
            spawn_key=(_COLUMN_TAG, _name_key(qualified), int(occurrence)))
        return np.random.default_rng(seq)

    def column(self, qualified: str, occurrence: int, ecv: ECV) -> np.ndarray:
        key = (qualified, int(occurrence))
        column = self._columns.get(key)
        if column is None:
            column = ecv.sample_n(self.column_rng(qualified, occurrence),
                                  self.n)
            self._columns[key] = column
        return column

    def outcome_rng(self, index: int) -> np.random.Generator:
        """Generator for sample ``index``'s outcome-distribution draw."""
        seq = np.random.SeedSequence(self.entropy,
                                     spawn_key=(_OUTCOME_TAG, int(index)))
        return np.random.default_rng(seq)


def _column_summary(column: np.ndarray) -> str:
    """A compact, hashable stand-in recorded for a whole-column ECV read."""
    if column.dtype.kind in "bifu" and column.size:
        return f"batch[{column.size}] mean={float(np.mean(column)):.6g}"
    return f"batch[{column.size}]"


class _ColumnContext(_BaseContext):
    """Per-sample Monte Carlo context reading from shared columns.

    The replacement for drawing ``ecv.sample(rng)`` per read: sample
    ``index`` reads position ``index`` of the deterministic column for
    each ``(ECV, occurrence)`` it touches, so the values do not depend on
    which engine (or process) runs the sample.
    """

    def __init__(self, env: ECVEnvironment, store: ColumnStore, index: int,
                 session: "EvalSession | None" = None) -> None:
        super().__init__(env, session)
        self._store = store
        self._index = index
        self._occurrence: dict[str, int] = {}

    def read(self, owner: Any, name: str) -> Any:
        ecv = self._resolve(owner, name)
        qualified = f"{owner.name}.{name}"
        occurrence = self._occurrence.get(qualified, 0)
        self._occurrence[qualified] = occurrence + 1
        value = self._store.column(qualified, occurrence, ecv)[self._index]
        if isinstance(value, np.generic):
            value = value.item()
        self._record(qualified, value)
        return value


class _BatchContext(_BaseContext):
    """Batched Monte Carlo context: ECV reads return whole columns.

    The batched replacement for ``_SamplingContext``: interface code runs
    *once* with each ECV read yielding the full length-``n`` column, and
    numpy broadcasting evaluates all samples simultaneously.  Interfaces
    that need a scalar (branching, ``int()``, dict lookup) raise on the
    array, which the :class:`VectorEngine` turns into a per-sample
    fallback over the same columns.
    """

    def __init__(self, env: ECVEnvironment, store: ColumnStore,
                 session: "EvalSession | None" = None) -> None:
        super().__init__(env, session)
        self._store = store
        self._occurrence: dict[str, int] = {}

    def read(self, owner: Any, name: str) -> np.ndarray:
        ecv = self._resolve(owner, name)
        qualified = f"{owner.name}.{name}"
        occurrence = self._occurrence.get(qualified, 0)
        self._occurrence[qualified] = occurrence + 1
        column = self._store.column(qualified, occurrence, ecv)
        self._record(qualified, _column_summary(column))
        return column


@dataclass
class MCTask:
    """One Monte Carlo evaluation request, as the engines see it."""

    fn: Callable[[], Any]
    env: ECVEnvironment
    n: int
    entropy: int
    session: "EvalSession | None" = None
    #: A picklable zero-argument callable equivalent to ``fn`` (an
    #: :class:`~repro.core.interface.EnergyCall`), when the evaluation
    #: came through the keyed path.  Required for process fan-out.
    call: Callable[[], Any] | None = None


class _NotVectorizable(Exception):
    """Internal: the batched pass produced output of the wrong shape."""


def _outcome_scalar(value: Any, store: ColumnStore, index: int) -> float:
    """One sample's outcome in Joules (drawing from outcome distributions)."""
    if isinstance(value, AbstractEnergy):
        raise EvaluationError(
            "Monte-Carlo evaluation needs concrete energies; ground "
            "abstract units first")
    if isinstance(value, Energy):
        return float(value.as_joules)
    if isinstance(value, EnergyDistribution):
        if isinstance(value, PointMass):
            return float(value.mean())
        return float(value.sample(store.outcome_rng(index), 1)[0])
    return float(value)


def _outcome_vector(value: Any, store: ColumnStore, n: int) -> np.ndarray:
    """All samples' outcomes from one batched pass, as a float column."""
    if isinstance(value, AbstractEnergy):
        raise EvaluationError(
            "Monte-Carlo evaluation needs concrete energies; ground "
            "abstract units first")
    if isinstance(value, Energy):
        value = value.as_joules
    if isinstance(value, EnergyDistribution):
        if isinstance(value, PointMass):
            return np.full(n, value.mean())
        # A distribution with scalar parameters (otherwise constructing
        # it from columns would have raised): draw per sample with the
        # same per-index generators the serial path uses.
        return np.array([
            float(value.sample(store.outcome_rng(index), 1)[0])
            for index in range(n)])
    array = np.asarray(value, dtype=float)
    if array.ndim == 0:
        return np.full(n, float(array))
    if array.shape != (n,):
        raise _NotVectorizable(
            f"batched evaluation produced shape {array.shape}, "
            f"expected ({n},)")
    return array


def _per_sample(task: MCTask, store: ColumnStore,
                lo: int = 0, hi: int | None = None,
                session: "EvalSession | None" = None) -> np.ndarray:
    """Evaluate samples ``lo:hi`` one at a time over shared columns."""
    hi = task.n if hi is None else hi
    weight = 1.0 / task.n
    out = np.empty(hi - lo)
    for index in range(lo, hi):
        context = _ColumnContext(task.env, store, index, session=session)
        if session is not None:
            session._on_trace_begin()
        value = _run_in_context(task.fn, context)
        if session is not None:
            session._on_trace_end(weight, value)
        out[index - lo] = _outcome_scalar(value, store, index)
    return out


class MCEngine:
    """Strategy interface: produce the ``n`` Monte Carlo draws of a task."""

    name = "abstract"

    def draws(self, task: MCTask) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialEngine(MCEngine):
    """The reference per-sample loop with full per-sample hook events."""

    name = "serial"

    def draws(self, task: MCTask) -> np.ndarray:
        store = ColumnStore(task.entropy, task.n)
        return _per_sample(task, store, session=task.session)


class VectorEngine(MCEngine):
    """One batched pass over whole columns, per-sample fallback on error.

    The batch shows up in the session's hook chain as a first-class
    event: the recorder sees one trace whose value is the empirical
    distribution of all draws, and accounting hooks receive
    :meth:`~repro.core.session.EvalHook.on_batch` with the sample count
    (so trace budgets count the same work as a serial run).
    """

    name = "vector"

    def draws(self, task: MCTask) -> np.ndarray:
        store = ColumnStore(task.entropy, task.n)
        session = task.session
        if session is not None:
            session._on_trace_begin()
        try:
            context = _BatchContext(task.env, store, session=session)
            value = _run_in_context(task.fn, context)
            draws = _outcome_vector(value, store, task.n)
        except EvaluationError:
            # A genuine semantic error (abstract energies, unknown ECV):
            # the per-sample path would raise it identically.
            if session is not None:
                session._abort_trace()
            raise
        except Exception:
            # The interface needed scalars (branched on an ECV, called
            # math.*, indexed a dict...).  Re-run per sample over the
            # same columns: bitwise-identical draws, historical hook
            # semantics.
            if session is not None:
                session._abort_trace()
            return _per_sample(task, store, session=session)
        if session is not None:
            session._on_batch(task.n, Empirical(draws))
        return draws


def _worker_evaluate(call: Callable[[], Any], env: ECVEnvironment,
                     entropy: int, n: int, lo: int, hi: int) -> np.ndarray:
    """Executed in a worker process: one shard of the sample range.

    Rebuilds the column store from ``entropy`` (columns are pure
    functions of it) and evaluates its contiguous index slice.  A
    seed-pinned session is activated so nested ``evaluate()`` calls
    inside the interface stay deterministic and match the parent.
    """
    from repro.core.interface import _ACTIVE_SESSION
    from repro.core.session import EvalSession

    store = ColumnStore(entropy, n)
    task = MCTask(fn=call, env=env, n=n, entropy=entropy, call=call)
    token = _ACTIVE_SESSION.set(EvalSession(seed=entropy, engine="serial"))
    try:
        return _per_sample(task, store, lo=lo, hi=hi)
    finally:
        _ACTIVE_SESSION.reset(token)


def _shard_bounds(n: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal index ranges covering ``range(n)``."""
    base, extra = divmod(n, shards)
    bounds = []
    lo = 0
    for shard in range(shards):
        hi = lo + base + (1 if shard < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ParallelEngine(MCEngine):
    """Multi-process sharding of the sample range.

    Workers receive the picklable :class:`~repro.core.interface.EnergyCall`
    plus the entropy and rebuild identical columns, so the concatenated
    shards are bitwise-equal to a serial run for *any* shard count.
    Hook-wise the parent emits one batch event (per-sample span detail
    stays in the workers and is not shipped back).  Tasks with no
    picklable call (closures, ``evaluate_fn``) fall back to the
    in-process :class:`VectorEngine`.
    """

    name = "parallel"

    def __init__(self, shards: int | None = None) -> None:
        self.shards = shards

    def _resolve_shards(self, n: int) -> int:
        shards = self.shards if self.shards is not None else os.cpu_count() or 1
        return max(1, min(int(shards), int(n)))

    def draws(self, task: MCTask) -> np.ndarray:
        shards = self._resolve_shards(task.n)
        payload, pickle_error = self._picklable_payload(task)
        session = task.session
        if payload is None or shards == 1:
            if pickle_error is not None and session is not None:
                # Surface *why* the parallel engine fell back in-process:
                # the original pickling error used to be swallowed here.
                session._annotate(
                    f"parallel fallback: call not picklable "
                    f"({type(pickle_error).__name__}: {pickle_error})")
            try:
                return _VECTOR.draws(task)
            except Exception as exc:
                if pickle_error is not None and exc.__cause__ is None:
                    # The fallback failed too; chain the pickling error
                    # so the report shows both causes.
                    raise exc from pickle_error
                raise
        call, env = payload
        fault_hook = session.fault_hook if session is not None else None
        if session is not None:
            session._on_trace_begin()
        try:
            bounds = _shard_bounds(task.n, shards)
            live, dead = self._split_dead_shards(bounds, fault_hook)
            parts: list[np.ndarray | None] = [None] * shards
            if live:
                start_methods = multiprocessing.get_all_start_methods()
                context = (multiprocessing.get_context("fork")
                           if "fork" in start_methods else None)
                with ProcessPoolExecutor(max_workers=len(live),
                                         mp_context=context) as pool:
                    futures = {
                        shard: pool.submit(_worker_evaluate, call, env,
                                           task.entropy, task.n, lo, hi)
                        for shard, (lo, hi) in live}
                    for shard, future in futures.items():
                        try:
                            parts[shard] = future.result()
                        except Exception as exc:
                            # A genuinely dead worker: re-shard its range
                            # in-process (columns are pure functions of
                            # the entropy, so the recovery is bitwise-
                            # identical to what the worker would return).
                            dead.append((shard, bounds[shard]))
                            if session is not None:
                                session._annotate(
                                    f"shard {shard} died "
                                    f"({type(exc).__name__}); recomputed "
                                    f"in-process")
            for shard, (lo, hi) in dead:
                parts[shard] = _worker_evaluate(call, env, task.entropy,
                                                task.n, lo, hi)
        except BaseException:
            if session is not None:
                session._abort_trace()
            raise
        draws = np.concatenate([part for part in parts if part is not None])
        if session is not None:
            session._on_batch(task.n, Empirical(draws))
        return draws

    @staticmethod
    def _split_dead_shards(bounds: list[tuple[int, int]], fault_hook: Any
                           ) -> tuple[list, list]:
        """Partition shards into live ones and injected-dead ones.

        Each shard consults the session's fault plan (site
        ``"mcengine.shard"``) once, in shard order, so replays kill the
        same shards.  Dead shards are recomputed in the parent over the
        same deterministic columns — the result stays bitwise-identical,
        the fault only costs the lost parallelism.
        """
        live: list[tuple[int, tuple[int, int]]] = []
        dead: list[tuple[int, tuple[int, int]]] = []
        for shard, span in enumerate(bounds):
            dies = (fault_hook is not None
                    and fault_hook.shard_dies(shard))
            (dead if dies else live).append((shard, span))
        return live, dead

    @staticmethod
    def _picklable_payload(task: MCTask
                           ) -> tuple[tuple | None, Exception | None]:
        """``(payload, error)``: the picklable payload, or why there is none."""
        if task.call is None:
            return None, None
        payload = (task.call, task.env)
        try:
            pickle.dumps(payload)
        except Exception as exc:
            return None, exc
        return payload, None

    def __repr__(self) -> str:
        return f"ParallelEngine(shards={self.shards})"


_SERIAL = SerialEngine()
_VECTOR = VectorEngine()
_PARALLEL = ParallelEngine()

#: Named engine registry (``EvalSession(engine="parallel")``, CLI flags).
ENGINES: dict[str, MCEngine] = {
    "serial": _SERIAL,
    "vector": _VECTOR,
    "parallel": _PARALLEL,
}


def resolve_engine(engine: "str | MCEngine | None") -> MCEngine:
    """Resolve an engine name (or instance) to an engine.

    ``None`` means the default: the adaptive :class:`VectorEngine`.
    """
    if engine is None:
        return _VECTOR
    if isinstance(engine, MCEngine):
        return engine
    try:
        return ENGINES[engine]
    except (KeyError, TypeError):
        raise EvaluationError(
            f"unknown Monte Carlo engine {engine!r}; expected one of "
            f"{sorted(ENGINES)} or an MCEngine instance") from None
