"""Energy value types: concrete Joules and abstract energy units.

The paper (§3) allows an energy interface to return energy either in
concrete physical units (Joules, milli-Joules, Watt-seconds, ...) or in
*abstract energy units* such as "energy for a 2D convolution" or "energy
for a ReLU".  Abstract units support composition and relative comparison
("this function costs twice as much as that one") without committing to a
hardware-specific Joule figure; they are *grounded* to Joules by supplying
a per-unit cost table, typically obtained from a hardware energy interface
or from microbenchmark calibration.

Two value types implement this:

:class:`Energy`
    An immutable wrapper around a float number of Joules with full
    arithmetic, comparison and formatting support.

:class:`AbstractEnergy`
    An immutable linear combination of named abstract units, e.g.
    ``8 * Unit("conv2d") + 16 * Unit("mlp")``, with :meth:`AbstractEnergy.ground`
    converting it to :class:`Energy` given a cost table.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping, Union

import numpy as np

from repro.core.errors import UnitMismatchError

__all__ = [
    "Energy",
    "AbstractEnergy",
    "Unit",
    "ZERO",
    "as_joules",
    "register_symbolic_carrier",
]

#: Tolerance used by :meth:`Energy.isclose` and equality of grounded values.
_REL_TOL = 1e-9

#: Types allowed to flow through :class:`Energy` arithmetic symbolically
#: (stored as-is, like the ndarray payload of the batched Monte Carlo
#: engine).  Registered by :mod:`repro.compile` for the symbolic
#: :class:`~repro.analysis.expr.Expr` IR, so the core carries no import
#: on the analysis layer.
_SYMBOLIC_CARRIERS: tuple[type, ...] = ()


def register_symbolic_carrier(carrier: type) -> None:
    """Allow ``carrier`` instances as :class:`Energy` payloads.

    The partial evaluator runs energy methods with symbolic values in
    place of ECV reads; every unit constructor and scaling operation on
    :class:`Energy` then performs its arithmetic *on the payload* (a
    symbolic expression records it) instead of coercing to float.
    """
    global _SYMBOLIC_CARRIERS
    if carrier not in _SYMBOLIC_CARRIERS:
        _SYMBOLIC_CARRIERS = _SYMBOLIC_CARRIERS + (carrier,)


class Energy:
    """An amount of energy, stored internally in Joules.

    ``Energy`` is immutable and supports the arithmetic a physical
    quantity should: addition/subtraction with other energies, scaling by
    dimensionless numbers, division by another energy (yielding a float
    ratio) and total-order comparisons.

    >>> Energy.millijoules(5) + Energy.millijoules(100)
    Energy(0.105 J)
    >>> 2 * Energy.joules(1.5)
    Energy(3 J)
    """

    __slots__ = ("_joules",)

    def __init__(self, joules: float) -> None:
        if isinstance(joules, np.ndarray) or isinstance(
                joules, _SYMBOLIC_CARRIERS):
            # Vector-valued energy (one Joule figure per Monte Carlo
            # sample, produced inside the batched evaluation engine) or
            # a symbolic expression (produced inside the interface
            # compiler's partial evaluation).  Both are unwrapped before
            # results reach callers; arithmetic broadcasts/records.
            self._joules = joules
        else:
            self._joules = float(joules)

    # -- constructors ----------------------------------------------------
    @classmethod
    def joules(cls, value: float) -> "Energy":
        """Construct from Joules."""
        return cls(value)

    @classmethod
    def millijoules(cls, value: float) -> "Energy":
        """Construct from milli-Joules."""
        return cls(value * 1e-3)

    @classmethod
    def microjoules(cls, value: float) -> "Energy":
        """Construct from micro-Joules."""
        return cls(value * 1e-6)

    @classmethod
    def nanojoules(cls, value: float) -> "Energy":
        """Construct from nano-Joules."""
        return cls(value * 1e-9)

    @classmethod
    def picojoules(cls, value: float) -> "Energy":
        """Construct from pico-Joules."""
        return cls(value * 1e-12)

    @classmethod
    def watt_seconds(cls, value: float) -> "Energy":
        """Construct from Watt-seconds (identical to Joules)."""
        return cls(value)

    @classmethod
    def watt_hours(cls, value: float) -> "Energy":
        """Construct from Watt-hours."""
        return cls(value * 3600.0)

    @classmethod
    def kilowatt_hours(cls, value: float) -> "Energy":
        """Construct from kilo-Watt-hours."""
        return cls(value * 3.6e6)

    # -- accessors --------------------------------------------------------
    @property
    def as_joules(self) -> float:
        """The value in Joules as a plain float."""
        return self._joules

    @property
    def as_millijoules(self) -> float:
        """The value in milli-Joules as a plain float."""
        return self._joules * 1e3

    @property
    def as_microjoules(self) -> float:
        """The value in micro-Joules as a plain float."""
        return self._joules * 1e6

    @property
    def as_watt_hours(self) -> float:
        """The value in Watt-hours as a plain float."""
        return self._joules / 3600.0

    @property
    def as_kilowatt_hours(self) -> float:
        """The value in kilo-Watt-hours as a plain float."""
        return self._joules / 3.6e6

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: "Energy") -> "Energy":
        if isinstance(other, Energy):
            return Energy(self._joules + other._joules)
        if other == 0:  # allow sum() over energies
            return Energy(self._joules)
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: "Energy") -> "Energy":
        if isinstance(other, Energy):
            return Energy(self._joules - other._joules)
        return NotImplemented

    def __mul__(self, factor: float) -> "Energy":
        if isinstance(factor, (int, float, np.ndarray)) or isinstance(
                factor, _SYMBOLIC_CARRIERS):
            return Energy(self._joules * factor)
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Energy", float]) -> Union["Energy", float]:
        if isinstance(other, Energy):
            return self._joules / other._joules
        if isinstance(other, (int, float, np.ndarray)) or isinstance(
                other, _SYMBOLIC_CARRIERS):
            return Energy(self._joules / other)
        return NotImplemented

    def __neg__(self) -> "Energy":
        return Energy(-self._joules)

    def __abs__(self) -> "Energy":
        return Energy(abs(self._joules))

    def __float__(self) -> float:
        return self._joules

    # -- comparisons ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Energy):
            return self._joules == other._joules
        return NotImplemented

    def __lt__(self, other: "Energy") -> bool:
        if isinstance(other, Energy):
            return self._joules < other._joules
        return NotImplemented

    def __le__(self, other: "Energy") -> bool:
        if isinstance(other, Energy):
            return self._joules <= other._joules
        return NotImplemented

    def __gt__(self, other: "Energy") -> bool:
        if isinstance(other, Energy):
            return self._joules > other._joules
        return NotImplemented

    def __ge__(self, other: "Energy") -> bool:
        if isinstance(other, Energy):
            return self._joules >= other._joules
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Energy", self._joules))

    def isclose(self, other: "Energy", rel_tol: float = _REL_TOL,
                abs_tol: float = 0.0) -> bool:
        """Approximate equality, mirroring :func:`math.isclose`."""
        return math.isclose(self._joules, other._joules,
                            rel_tol=rel_tol, abs_tol=abs_tol)

    # -- formatting -------------------------------------------------------
    def __repr__(self) -> str:
        return f"Energy({self.human_readable()})"

    def __str__(self) -> str:
        return self.human_readable()

    def human_readable(self) -> str:
        """Render with an SI prefix chosen to keep the mantissa readable."""
        value = self._joules
        if value == 0:
            return "0 J"
        magnitude = abs(value)
        for threshold, factor, suffix in (
            (3.6e6, 1 / 3.6e6, "kWh"),
            (1.0, 1.0, "J"),
            (1e-3, 1e3, "mJ"),
            (1e-6, 1e6, "uJ"),
            (1e-9, 1e9, "nJ"),
        ):
            if magnitude >= threshold:
                return f"{value * factor:.6g} {suffix}"
        return f"{value * 1e12:.6g} pJ"


#: The zero energy, convenient as a fold seed.
ZERO = Energy(0.0)


def as_joules(value: Union["Energy", float, int]) -> float:
    """Coerce an :class:`Energy` or a bare number (interpreted as Joules)."""
    if isinstance(value, Energy):
        return value.as_joules
    if isinstance(value, (int, float)):
        return float(value)
    raise TypeError(f"cannot interpret {value!r} as an energy in Joules")


class AbstractEnergy:
    """A linear combination of named abstract energy units.

    Instances behave like sparse vectors indexed by unit name.  They are
    immutable; arithmetic returns new instances.  Terms with coefficient
    zero are dropped, so ``a - a == AbstractEnergy()``.

    >>> conv, relu = Unit("conv2d"), Unit("relu")
    >>> cost = 8 * conv + 8 * relu
    >>> cost.coefficient("conv2d")
    8.0
    >>> cost.ground({"conv2d": Energy.microjoules(3), "relu": Energy.nanojoules(40)})
    Energy(24.32 uJ)
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[str, float] | None = None) -> None:
        cleaned = {}
        for unit, coeff in (terms or {}).items():
            coeff = float(coeff)
            if coeff != 0.0:
                cleaned[str(unit)] = coeff
        self._terms = cleaned

    # -- accessors --------------------------------------------------------
    def coefficient(self, unit: str) -> float:
        """Coefficient of ``unit`` (0.0 when absent)."""
        return self._terms.get(unit, 0.0)

    @property
    def units(self) -> frozenset:
        """The set of unit names with non-zero coefficients."""
        return frozenset(self._terms)

    def items(self) -> Iterator[tuple[str, float]]:
        """Iterate ``(unit, coefficient)`` pairs in sorted unit order."""
        return iter(sorted(self._terms.items()))

    def is_zero(self) -> bool:
        """True when every coefficient is zero."""
        return not self._terms

    # -- algebra ----------------------------------------------------------
    def __add__(self, other: "AbstractEnergy") -> "AbstractEnergy":
        if isinstance(other, AbstractEnergy):
            merged = dict(self._terms)
            for unit, coeff in other._terms.items():
                merged[unit] = merged.get(unit, 0.0) + coeff
            return AbstractEnergy(merged)
        if other == 0:
            return self
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: "AbstractEnergy") -> "AbstractEnergy":
        if isinstance(other, AbstractEnergy):
            return self + (-1.0) * other
        return NotImplemented

    def __mul__(self, factor: float) -> "AbstractEnergy":
        if isinstance(factor, (int, float)):
            return AbstractEnergy(
                {unit: coeff * factor for unit, coeff in self._terms.items()})
        return NotImplemented

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AbstractEnergy):
            return self._terms == other._terms
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    # -- semantics --------------------------------------------------------
    def ratio_to(self, other: "AbstractEnergy") -> float:
        """Relative cost of ``self`` versus ``other``.

        Only defined when the two combinations are proportional (same units,
        coefficients in a single common ratio) — this is the paper's
        "2 ReLUs vs 4 ReLUs" comparison.  Raises
        :class:`~repro.core.errors.UnitMismatchError` otherwise.
        """
        if other.is_zero():
            raise UnitMismatchError("cannot take a ratio to a zero abstract energy")
        if self.is_zero():
            return 0.0
        if self.units != other.units:
            raise UnitMismatchError(
                f"abstract energies use different units: "
                f"{sorted(self.units)} vs {sorted(other.units)}")
        ratios = {self._terms[u] / other._terms[u] for u in self._terms}
        first = next(iter(ratios))
        if any(not math.isclose(r, first, rel_tol=_REL_TOL) for r in ratios):
            raise UnitMismatchError(
                "abstract energies are not proportional; ground them to Joules "
                "before comparing")
        return first

    def ground(self, cost_table: Mapping[str, Union[Energy, float]]) -> Energy:
        """Convert to concrete :class:`Energy` using a per-unit cost table.

        ``cost_table`` maps unit names to the Joules one unit costs (either
        :class:`Energy` or a bare float in Joules).  Every unit present in
        this combination must be covered.
        """
        total = 0.0
        for unit, coeff in self._terms.items():
            if unit not in cost_table:
                raise UnitMismatchError(
                    f"cost table has no entry for abstract unit {unit!r}")
            total += coeff * as_joules(cost_table[unit])
        return Energy(total)

    def __repr__(self) -> str:
        if not self._terms:
            return "AbstractEnergy(0)"
        body = " + ".join(f"{coeff:g}*{unit}" for unit, coeff in self.items())
        return f"AbstractEnergy({body})"


def Unit(name: str) -> AbstractEnergy:
    """One abstract energy unit with the given name.

    A convenience constructor so interfaces read naturally:
    ``8 * Unit("conv2d") + 16 * Unit("mlp")``.
    """
    return AbstractEnergy({name: 1.0})
