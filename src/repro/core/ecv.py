"""Energy-critical variables (ECVs).

§3 of the paper: an energy interface must account for state that influences
energy but is not part of the interface's input — whether a request is in
the cache, whether the WiFi radio is already on, the CPU's current DVFS
state.  ECVs capture such state as *random variables*; with ECVs bound to
distributions, an interface's return value becomes a probability
distribution over energies.

An :class:`ECV` is a declaration: a name, a human-readable description and
a distribution over its values.  Concrete subclasses cover the common
cases:

* :class:`BernoulliECV` — boolean state ("request_hit"),
* :class:`CategoricalECV` — finite-valued state ("dvfs_state"),
* :class:`FixedECV` — degenerate (known) state,
* :class:`UniformIntECV` — integer state uniform on a range,
* :class:`ContinuousECV` — real-valued state; not enumerable, handled by
  sampling or by its bounds in worst-case mode.

An :class:`ECVEnvironment` binds ECV names to concrete values or to
replacement ECVs.  Resource managers use environments to specialise the
interfaces they export: a cache manager that observes a 92 % hit rate
exports the cache's interface with ``local_cache_hit`` bound to
``BernoulliECV(..., p=0.92)``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.errors import ECVBindingError

__all__ = [
    "as_column",
    "ECV",
    "BernoulliECV",
    "CategoricalECV",
    "FixedECV",
    "UniformIntECV",
    "ContinuousECV",
    "ECVEnvironment",
    "as_ecv",
]


def as_column(values: Sequence[Any]) -> np.ndarray:
    """Coerce a list of sampled values to a 1-D numpy column.

    Numeric and boolean values become a typed array (so the vectorized
    Monte Carlo engine can do arithmetic on the whole column); anything
    else falls back to a 1-D ``object`` array, which preserves per-sample
    indexing without inventing a numeric dtype.
    """
    try:
        column = np.asarray(values)
    except (ValueError, TypeError):
        column = None
    if column is None or column.ndim != 1 or column.dtype.kind not in "bifu":
        column = np.empty(len(values), dtype=object)
        for i, value in enumerate(values):
            column[i] = value
    return column


class ECV:
    """Base class for energy-critical variable declarations.

    Subclasses implement :meth:`support` (for discrete enumeration),
    :meth:`sample` and :meth:`extreme_values` (for worst-case analysis).
    :meth:`sample_n` is the bulk-sampling path used by the Monte Carlo
    engine; the base implementation loops over :meth:`sample`, and the
    concrete subclasses override it with a vectorized draw that consumes
    the generator identically to ``n`` sequential :meth:`sample` calls
    (bitwise-identical values, so serial and vectorized evaluation agree).
    """

    def __init__(self, name: str, description: str = "") -> None:
        if not name or not name.strip():
            raise ECVBindingError("an ECV needs a non-empty name")
        self.name = name
        self.description = description

    def support(self) -> list[tuple[Any, float]] | None:
        """``(value, probability)`` pairs, or ``None`` when not enumerable."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value."""
        raise NotImplementedError

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` values as a 1-D column.

        Contract: ``sample_n(rng, n)`` must return exactly the values that
        ``n`` sequential :meth:`sample` calls on an identically-seeded
        generator would return, in order.  The base implementation
        guarantees that by looping; vectorized overrides rely on numpy's
        bulk draws consuming the bit stream identically to repeated
        scalar draws.
        """
        return as_column([self.sample(rng) for _ in range(int(n))])

    def extreme_values(self) -> list[Any]:
        """Candidate values for worst-case analysis.

        For discrete ECVs this is the whole support; for continuous ones
        it is the interval endpoints (energy interfaces are expected to be
        monotone in continuous ECVs, which all our models are).
        """
        raise NotImplementedError

    def is_enumerable(self) -> bool:
        """True when :meth:`support` returns a finite list."""
        return self.support() is not None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class BernoulliECV(ECV):
    """A boolean ECV that is ``True`` with probability ``p``."""

    def __init__(self, name: str, p: float, description: str = "") -> None:
        super().__init__(name, description)
        if not 0.0 <= p <= 1.0:
            raise ECVBindingError(f"Bernoulli probability must be in [0, 1], got {p}")
        self.p = float(p)

    def support(self) -> list[tuple[Any, float]]:
        if self.p == 0.0:
            return [(False, 1.0)]
        if self.p == 1.0:
            return [(True, 1.0)]
        return [(False, 1.0 - self.p), (True, self.p)]

    def sample(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.p)

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.random(int(n)) < self.p

    def extreme_values(self) -> list[Any]:
        return [value for value, _ in self.support()]


class CategoricalECV(ECV):
    """An ECV over a finite set of values with given probabilities."""

    def __init__(self, name: str, outcomes: Mapping[Any, float],
                 description: str = "") -> None:
        super().__init__(name, description)
        if not outcomes:
            raise ECVBindingError(f"ECV {name!r} needs at least one outcome")
        probs = [float(p) for p in outcomes.values()]
        if any(p < 0 for p in probs):
            raise ECVBindingError(f"ECV {name!r} has a negative probability")
        total = sum(probs)
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
            raise ECVBindingError(
                f"ECV {name!r} probabilities must sum to 1, got {total}")
        self._outcomes = [(value, p / total) for value, p in outcomes.items()]

    def support(self) -> list[tuple[Any, float]]:
        return [(value, p) for value, p in self._outcomes if p > 0.0]

    def sample(self, rng: np.random.Generator) -> Any:
        threshold = rng.random()
        cumulative = 0.0
        for value, p in self._outcomes:
            cumulative += p
            if threshold < cumulative:
                return value
        return self._outcomes[-1][0]

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        thresholds = rng.random(int(n))
        # cumsum performs the same left-to-right float additions as the
        # scalar loop, and searchsorted(side="right") finds the first
        # index with cumulative > threshold — so the chosen outcomes are
        # bitwise-identical to n sequential sample() calls.
        cumulative = np.cumsum([p for _, p in self._outcomes])
        indices = np.minimum(
            np.searchsorted(cumulative, thresholds, side="right"),
            len(self._outcomes) - 1)
        return as_column([self._outcomes[i][0] for i in indices])

    def extreme_values(self) -> list[Any]:
        return [value for value, _ in self.support()]


class FixedECV(ECV):
    """An ECV whose value is known (a degenerate distribution)."""

    def __init__(self, name: str, value: Any, description: str = "") -> None:
        super().__init__(name, description)
        self.value = value

    def support(self) -> list[tuple[Any, float]]:
        return [(self.value, 1.0)]

    def sample(self, rng: np.random.Generator) -> Any:
        return self.value

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return as_column([self.value] * int(n))

    def extreme_values(self) -> list[Any]:
        return [self.value]


class UniformIntECV(ECV):
    """An integer ECV uniform on ``[low, high]`` inclusive."""

    def __init__(self, name: str, low: int, high: int, description: str = "") -> None:
        super().__init__(name, description)
        if high < low:
            raise ECVBindingError(f"ECV {name!r} has inverted bounds [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)

    def support(self) -> list[tuple[Any, float]]:
        count = self.high - self.low + 1
        return [(value, 1.0 / count) for value in range(self.low, self.high + 1)]

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.integers(self.low, self.high + 1, size=int(n))

    def extreme_values(self) -> list[Any]:
        if self.low == self.high:
            return [self.low]
        return [self.low, self.high]


class ContinuousECV(ECV):
    """A real-valued ECV on ``[low, high]`` with a custom sampler.

    Continuous ECVs cannot be enumerated; the evaluator falls back to
    Monte Carlo whenever one is read in distribution mode, and uses the
    interval endpoints in worst-case mode.
    """

    def __init__(self, name: str, low: float, high: float,
                 sampler: Callable[[np.random.Generator], float] | None = None,
                 description: str = "") -> None:
        super().__init__(name, description)
        if high < low:
            raise ECVBindingError(f"ECV {name!r} has inverted bounds [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self._sampler = sampler

    def support(self) -> None:
        return None

    def sample(self, rng: np.random.Generator) -> float:
        if self._sampler is not None:
            value = float(self._sampler(rng))
            return min(max(value, self.low), self.high)
        return float(rng.uniform(self.low, self.high))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self._sampler is not None:
            # Custom samplers only promise a scalar protocol; loop them.
            return as_column([self.sample(rng) for _ in range(int(n))])
        return rng.uniform(self.low, self.high, size=int(n))

    def extreme_values(self) -> list[Any]:
        if self.low == self.high:
            return [self.low]
        return [self.low, self.high]


def as_ecv(name: str, binding: Any) -> ECV:
    """Coerce an environment binding to an ECV.

    * an :class:`ECV` passes through (renamed bindings keep their own name),
    * any other value becomes a :class:`FixedECV`.
    """
    if isinstance(binding, ECV):
        return binding
    return FixedECV(name, binding)


class ECVEnvironment:
    """Bindings from ECV names to values or replacement ECVs.

    Lookup accepts *qualified* names (``"redis_cache.local_cache_hit"``)
    with fallback to the bare name, so an environment can target one
    interface's ECV specifically or all ECVs sharing a name.

    Environments are immutable; :meth:`extended` returns a new environment
    with additional bindings (new bindings win on conflict).
    """

    def __init__(self, bindings: Mapping[str, Any] | None = None) -> None:
        self._bindings = dict(bindings or {})

    def lookup(self, qualified: str, bare: str) -> ECV | None:
        """Resolve a binding, preferring the qualified name."""
        for key in (qualified, bare):
            if key in self._bindings:
                return as_ecv(key, self._bindings[key])
        return None

    def extended(self, bindings: Mapping[str, Any]) -> "ECVEnvironment":
        """A new environment with ``bindings`` layered on top of this one."""
        merged = dict(self._bindings)
        merged.update(bindings)
        return ECVEnvironment(merged)

    def with_defaults(self, defaults: Mapping[str, Any]) -> "ECVEnvironment":
        """A new environment where this environment's bindings win.

        Used by resource managers: the manager's knowledge (``defaults``)
        applies unless the caller explicitly bound the same ECV.
        """
        merged = dict(defaults)
        merged.update(self._bindings)
        return ECVEnvironment(merged)

    def keys(self) -> Sequence[str]:
        return list(self._bindings)

    @property
    def bindings(self) -> dict[str, Any]:
        """A copy of the raw name -> value/ECV mapping."""
        return dict(self._bindings)

    def __contains__(self, key: str) -> bool:
        return key in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:
        return f"ECVEnvironment({sorted(self._bindings)})"


#: The empty environment, shared as a default.
ECVEnvironment.EMPTY = ECVEnvironment()
