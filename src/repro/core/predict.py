"""The prediction-backend layer: one seam for every energy prediction.

Before this module the repository predicted energy in four
independently-implemented places — the Monte Carlo engines, the
gateway's admission-quantile path, the fleet cost models and the
managers' closed-form fallbacks.  :class:`PredictionBackend` is the one
protocol they all route through now:

``predict(call, ...)``
    Answer an energy query (an :class:`~repro.core.interface.EnergyCall`)
    in any evaluation mode, through the canonical evaluation pipeline —
    sessions, hooks and memoization all still apply; the backend only
    decides how the *Monte Carlo stage* is carried out.

``mean(call, ...)`` / ``quantile(call, q, ...)``
    The two shapes admission control and cost models actually consume:
    expected Joules as a float, and a distribution quantile.

``closed_form(call)``
    The managers' deterministic fallback — call the interface method
    directly (no session, no ECV sampling) and coerce to Joules.

``monte_carlo(session, ...)``
    The strategy hook :meth:`EvalSession._monte_carlo` delegates to.
    :class:`SampledBackend` implements it with the Monte Carlo engines
    exactly as the session always has; the compiled backend
    (:mod:`repro.compile`) answers from analytic forms or straight-line
    numpy kernels and falls back here when it cannot.

Backends are registered by name (``BACKENDS``/:func:`resolve_backend`),
mirroring the engine registry, so sessions and policies select them with
a string: ``EvalSession(backend="compiled")``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Hashable, Mapping

import numpy as np

from repro.core.ecv import ECVEnvironment
from repro.core.errors import EvaluationError
from repro.core.mcengine import MCEngine, MCTask, resolve_engine
from repro.core.units import Energy, as_joules

if TYPE_CHECKING:
    from repro.core.interface import EnergyCall
    from repro.core.session import EvalSession

__all__ = [
    "PredictionBackend",
    "SampledBackend",
    "BACKENDS",
    "register_backend",
    "resolve_backend",
]


class PredictionBackend:
    """Strategy protocol for answering energy queries.

    Subclasses implement :meth:`monte_carlo` — the stage reached when
    exact enumeration is impossible.  All other methods are final
    conveniences expressed through the canonical evaluation pipeline, so
    every prediction, whichever backend serves it, keeps session
    semantics (memoization, spans, budgets) intact.
    """

    name = "abstract"

    # -- the strategy hook -------------------------------------------------
    def monte_carlo(self, session: "EvalSession", *,
                    fn: Callable[[], Any],
                    env: ECVEnvironment,
                    mode: str,
                    rng: np.random.Generator | None,
                    n_samples: int,
                    engine: "str | MCEngine | None" = None,
                    call: Callable[[], Any] | None = None) -> Any:
        """Produce the Monte Carlo answer for one evaluation."""
        raise NotImplementedError

    # -- the query surface -------------------------------------------------
    def predict(self, call: "EnergyCall | Callable[[], Any]", *,
                session: "EvalSession | None" = None,
                mode: str | None = None,
                env: ECVEnvironment | Mapping[str, Any] | None = None,
                engine: "str | MCEngine | None" = None,
                n_samples: int | None = None,
                max_traces: int | None = None,
                rng: np.random.Generator | None = None,
                fingerprint: Hashable | None = None) -> Any:
        """Answer a query through the canonical pipeline via this backend.

        Equivalent to :func:`repro.core.interface.evaluate` with the
        session's Monte Carlo stage served by *this* backend (the
        session's own backend is restored afterwards).
        """
        from repro.core.interface import evaluate
        if session is None:
            from repro.core.session import EvalSession
            session = EvalSession(backend=self)
            return evaluate(call, session=session, mode=mode, env=env,
                            engine=engine, n_samples=n_samples,
                            max_traces=max_traces, rng=rng,
                            fingerprint=fingerprint)
        previous = session.backend
        session.backend = self
        try:
            return evaluate(call, session=session, mode=mode, env=env,
                            engine=engine, n_samples=n_samples,
                            max_traces=max_traces, rng=rng,
                            fingerprint=fingerprint)
        finally:
            session.backend = previous

    def mean(self, call: "EnergyCall", *,
             session: "EvalSession | None" = None,
             env: ECVEnvironment | Mapping[str, Any] | None = None,
             fingerprint: Hashable | None = None,
             n_samples: int | None = None) -> float:
        """Expected Joules of a query, as a plain float."""
        value = self.predict(call, session=session, mode="expected",
                             env=env, fingerprint=fingerprint,
                             n_samples=n_samples)
        return as_joules(value)

    def quantile(self, call: "EnergyCall", q: float, *,
                 session: "EvalSession | None" = None,
                 env: ECVEnvironment | Mapping[str, Any] | None = None,
                 fingerprint: Hashable | None = None,
                 n_samples: int | None = None) -> float:
        """The ``q``-quantile of a query's output distribution, in Joules."""
        dist = self.predict(call, session=session, mode="distribution",
                            env=env, fingerprint=fingerprint,
                            n_samples=n_samples)
        return float(dist.quantile(q))

    def worst(self, call: "EnergyCall", *,
              session: "EvalSession | None" = None,
              env: ECVEnvironment | Mapping[str, Any] | None = None,
              fingerprint: Hashable | None = None) -> float:
        """Worst-case Joules (exact extreme-value enumeration)."""
        value = self.predict(call, session=session, mode="worst", env=env,
                             fingerprint=fingerprint)
        return as_joules(value)

    def closed_form(self, call: "EnergyCall") -> float:
        """Deterministic direct invocation, in Joules (manager fallback).

        Calls the interface method outside any session — exactly the
        historical ``interface.E_run(...).as_joules`` fallback the
        managers use when evaluation fails, now spelled once.
        """
        return as_joules(call())

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SampledBackend(PredictionBackend):
    """The Monte Carlo engines, verbatim — the default backend.

    :meth:`monte_carlo` is the historical body of
    ``EvalSession._monte_carlo``: resolve the engine (per-call override
    over the session default), run its draws over deterministic sample
    columns, reduce per the mode.
    """

    name = "sampled"

    def monte_carlo(self, session: "EvalSession", *,
                    fn: Callable[[], Any],
                    env: ECVEnvironment,
                    mode: str,
                    rng: np.random.Generator | None,
                    n_samples: int,
                    engine: "str | MCEngine | None" = None,
                    call: Callable[[], Any] | None = None) -> Any:
        from repro.core.distributions import Empirical

        resolved = (session.engine if engine is None
                    else resolve_engine(engine))
        task = MCTask(fn=fn, env=env, n=int(n_samples),
                      entropy=session._mc_entropy(rng), session=session,
                      call=call)
        draws = resolved.draws(task)
        if mode == "expected":
            return Energy(float(np.mean(draws)))
        return Empirical(draws)


_SAMPLED = SampledBackend()

#: Named backend registry (``EvalSession(backend="compiled")``, policies,
#: CLI flags).  :mod:`repro.compile` registers ``"compiled"`` on import.
BACKENDS: dict[str, PredictionBackend] = {
    "sampled": _SAMPLED,
}


def register_backend(backend: PredictionBackend) -> PredictionBackend:
    """Register a backend under its ``name`` (later wins, like engines)."""
    BACKENDS[backend.name] = backend
    return backend


def resolve_backend(backend: "str | PredictionBackend | None"
                    ) -> PredictionBackend:
    """Resolve a backend name (or instance) to a backend.

    ``None`` means the default :class:`SampledBackend` — existing
    sessions keep their exact historical behavior.  ``"compiled"``
    lazily imports :mod:`repro.compile`, which registers itself.
    """
    if backend is None:
        return _SAMPLED
    if isinstance(backend, PredictionBackend):
        return backend
    if backend == "compiled" and backend not in BACKENDS:
        import repro.compile  # noqa: F401 - registers the backend
    try:
        return BACKENDS[backend]
    except (KeyError, TypeError):
        raise EvaluationError(
            f"unknown prediction backend {backend!r}; expected one of "
            f"{sorted(BACKENDS)} or a PredictionBackend instance") from None
