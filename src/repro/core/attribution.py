"""Energy attribution: splitting measured Joules across consumers.

Attribution is what existing tools (per-process energy accounting à la
power containers, Scaphandre, Kepler) already do, and the paper is
explicit that it is *necessary but not sufficient* for energy clarity:
attribution explains where past Joules went; interfaces predict future
ones.  This module provides the attribution half so the repository can
(a) validate interfaces against per-activity ground truth and (b) show
the gap: attribution cannot answer a single what-if.

The perennial policy question is what to do with **unattributed** energy
— static/idle power that no activity directly caused.  Three standard
policies are implemented:

* ``"activity"`` — ignore it (report dynamic energy only);
* ``"proportional"`` — split it pro-rata to each consumer's dynamic
  energy (the Kepler-style default);
* ``"duration"`` — split it by each consumer's busy time (closer to a
  time-based chargeback).

Consumers are identified by ledger record *tags*; anything logged with
the reserved tag ``"static"`` is overhead to be apportioned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import EnergyError
from repro.hardware.ledger import EnergyLedger

__all__ = ["Attribution", "attribute", "POLICIES"]

POLICIES = ("activity", "proportional", "duration")

#: Tags treated as unattributed overhead.
OVERHEAD_TAGS = frozenset({"static"})


@dataclass(frozen=True)
class Attribution:
    """The result of one attribution pass."""

    policy: str
    window: tuple[float, float]
    shares: dict[str, float]          # tag -> attributed Joules
    dynamic_joules: float
    overhead_joules: float

    @property
    def total_joules(self) -> float:
        """Everything the window consumed."""
        return self.dynamic_joules + self.overhead_joules

    def share_of(self, tag: str) -> float:
        """Attributed Joules for one consumer (0.0 if absent)."""
        return self.shares.get(tag, 0.0)

    def fractions(self) -> dict[str, float]:
        """Each consumer's fraction of the attributed total."""
        attributed = sum(self.shares.values())
        if attributed == 0:
            return {tag: 0.0 for tag in self.shares}
        return {tag: joules / attributed
                for tag, joules in self.shares.items()}

    def __str__(self) -> str:
        parts = ", ".join(f"{tag}={joules:.4g} J"
                          for tag, joules in sorted(self.shares.items()))
        return (f"Attribution[{self.policy}] over "
                f"[{self.window[0]:.4g}, {self.window[1]:.4g}]s: {parts} "
                f"(overhead {self.overhead_joules:.4g} J)")


def attribute(ledger: EnergyLedger, t0: float, t1: float,
              policy: str = "proportional",
              component: str | None = None) -> Attribution:
    """Attribute the window ``[t0, t1]`` of a ledger to consumer tags.

    ``component`` restricts the pass to one component's records (e.g.
    attribute only the GPU).  Overlapping records are pro-rated into the
    window exactly as :meth:`EnergyLedger.energy_between` does.
    """
    if policy not in POLICIES:
        raise EnergyError(
            f"unknown attribution policy {policy!r}; expected one of "
            f"{POLICIES}")
    if t1 < t0:
        raise EnergyError(f"inverted attribution window [{t0}, {t1}]")

    dynamic: dict[str, float] = {}
    busy_seconds: dict[str, float] = {}
    overhead = 0.0
    for record in ledger.records(component=component):
        joules = record.overlap_joules(t0, t1)
        if joules <= 0.0 and not (record.duration == 0.0
                                  and t0 <= record.t_start <= t1):
            continue
        if record.tag in OVERHEAD_TAGS:
            overhead += joules
            continue
        dynamic[record.tag] = dynamic.get(record.tag, 0.0) + joules
        overlap = min(record.t_end, t1) - max(record.t_start, t0)
        busy_seconds[record.tag] = busy_seconds.get(record.tag, 0.0) \
            + max(overlap, 0.0)

    shares = dict(dynamic)
    dynamic_total = sum(dynamic.values())
    if policy == "proportional" and dynamic_total > 0:
        for tag in shares:
            shares[tag] += overhead * dynamic[tag] / dynamic_total
    elif policy == "duration":
        time_total = sum(busy_seconds.values())
        if time_total > 0:
            for tag in shares:
                shares[tag] += overhead * busy_seconds[tag] / time_total
    return Attribution(
        policy=policy,
        window=(t0, t1),
        shares=shares,
        dynamic_joules=dynamic_total,
        overhead_joules=overhead,
    )
