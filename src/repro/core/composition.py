"""Combinators for composing energy interfaces.

Resource managers are "the main agent of composition" (§3): they take the
interfaces of the resources they manage and export specialised interfaces
to the layer above.  The wrappers here implement the recurring composition
patterns:

:class:`BoundInterface`
    An interface with some of its ECVs bound by the manager — e.g. a cache
    manager that observes a 92 % hit rate exports the cache interface with
    ``local_cache_hit`` pre-bound.  Caller-supplied environments still win,
    so what-if analysis remains possible.

:class:`OverheadInterface`
    An interface with per-call management overhead added — e.g. the Python
    runtime adds interpreter dispatch energy to every call into an app.

:class:`SequenceInterface`
    The energy of a fixed call sequence across several interfaces (a
    request pipeline).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.core.distributions import EnergyDistribution
from repro.core.errors import CompositionError
from repro.core.interface import (
    _ACTIVE_CONTEXT,
    EnergyInterface,
    active_session,
)
from repro.core.units import AbstractEnergy, Energy, as_joules

__all__ = ["BoundInterface", "OverheadInterface", "SequenceInterface"]


def _add_outcomes(left: Any, right: Any) -> Any:
    """Add two interface-method outcomes of compatible kinds."""
    if isinstance(left, AbstractEnergy) or isinstance(right, AbstractEnergy):
        if isinstance(left, AbstractEnergy) and isinstance(right, AbstractEnergy):
            return left + right
        raise CompositionError(
            "cannot add abstract and concrete energies; ground abstract units "
            "first")
    if isinstance(left, EnergyDistribution) or isinstance(right, EnergyDistribution):
        from repro.core.distributions import as_distribution
        return as_distribution(left) + as_distribution(right)
    return Energy(as_joules(left) + as_joules(right))


class BoundInterface(EnergyInterface):
    """An interface whose ECVs are partially bound by a resource manager.

    Method calls on the wrapper delegate to the inner interface; while the
    inner method runs, the manager's bindings act as *defaults* in the
    active evaluation context (explicit caller bindings still override).
    Only energy methods (``E_*``) are wrapped; other attributes pass
    through untouched.
    """

    def __init__(self, inner: EnergyInterface, bindings: Mapping[str, Any],
                 name: str | None = None) -> None:
        super().__init__(name if name is not None else inner.name)
        self._inner = inner
        self._bindings = dict(bindings)

    @property
    def inner(self) -> EnergyInterface:
        """The wrapped interface."""
        return self._inner

    @property
    def bindings(self) -> dict[str, Any]:
        """The manager-supplied ECV bindings."""
        return dict(self._bindings)

    @property
    def span_labels(self) -> tuple[str, str] | None:
        # A binding overlay is transparent for attribution: spans carry
        # the wrapped interface's stack position.
        return self._inner.span_labels

    def __getattr__(self, attribute: str) -> Any:
        # Only reached when normal lookup fails, i.e. for inner attributes.
        inner = object.__getattribute__(self, "_inner")
        value = getattr(inner, attribute)
        if callable(value) and attribute.startswith("E_"):
            bindings = object.__getattribute__(self, "_bindings")

            def wrapper(*args: Any, **kwargs: Any) -> Any:
                context = _ACTIVE_CONTEXT.get()
                if context is None:
                    return value(*args, **kwargs)
                saved = context.env
                context.env = context.env.with_defaults(bindings)
                try:
                    return value(*args, **kwargs)
                finally:
                    context.env = saved

            wrapper.__name__ = attribute
            return wrapper
        return value


class OverheadInterface(EnergyInterface):
    """An interface with per-call management overhead added.

    ``overhead`` is either a fixed energy added to every ``E_*`` call or a
    callable ``(method_name, args, kwargs) -> Energy`` for call-dependent
    overhead (e.g. marshalling cost proportional to payload size).
    """

    def __init__(self, inner: EnergyInterface,
                 overhead: Energy | float | Callable[..., Any],
                 name: str | None = None) -> None:
        super().__init__(name if name is not None else inner.name)
        self._inner = inner
        self._overhead = overhead

    @property
    def inner(self) -> EnergyInterface:
        """The wrapped interface."""
        return self._inner

    @property
    def span_labels(self) -> tuple[str, str] | None:
        return self._inner.span_labels

    def _overhead_for(self, method: str, args: tuple, kwargs: dict) -> Any:
        if callable(self._overhead):
            return self._overhead(method, args, kwargs)
        return self._overhead

    def __getattr__(self, attribute: str) -> Any:
        inner = object.__getattribute__(self, "_inner")
        value = getattr(inner, attribute)
        if callable(value) and attribute.startswith("E_"):

            def wrapper(*args: Any, **kwargs: Any) -> Any:
                # Unlike a binding overlay, overhead is real energy spent
                # by this wrapper, so it owns a span: base + overhead at
                # this node, with the inner call as its child.
                session = active_session()
                recorder = session.recorder if session is not None else None
                pushed = (recorder.push_span(self, attribute, args)
                          if recorder is not None else False)
                try:
                    base = value(*args, **kwargs)
                    extra = self._overhead_for(attribute, args, kwargs)
                    outcome = _add_outcomes(base, extra)
                except BaseException:
                    if pushed:
                        recorder.pop_span()
                    raise
                if pushed:
                    recorder.set_outcome(outcome)
                    recorder.pop_span()
                return outcome

            wrapper.__name__ = attribute
            return wrapper
        return value


class SequenceInterface(EnergyInterface):
    """The energy of a fixed sequence of calls across interfaces.

    ``steps`` is a list of ``(interface, method_name, args_fn)`` where
    ``args_fn`` maps this interface's input to the step's arguments.  The
    exported method :meth:`E_sequence` sums the step energies — the energy
    of a request flowing through a pipeline of resources.
    """

    def __init__(self, name: str,
                 steps: Sequence[tuple[EnergyInterface, str,
                                       Callable[..., tuple]]]) -> None:
        super().__init__(name)
        if not steps:
            raise CompositionError("a sequence interface needs at least one step")
        self._steps = list(steps)

    def E_sequence(self, *args: Any, **kwargs: Any) -> Any:
        """Total energy of executing every step in order."""
        total: Any = None
        for interface, method, args_fn in self._steps:
            step_args = args_fn(*args, **kwargs)
            if not isinstance(step_args, tuple):
                step_args = (step_args,)
            outcome = getattr(interface, method)(*step_args)
            total = outcome if total is None else _add_outcomes(total, outcome)
        return total
