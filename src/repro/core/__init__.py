"""Core energy-interface framework.

This package implements the paper's primary contribution: energy
interfaces as executable programs (:mod:`~repro.core.interface`), the
value types they compute with (:mod:`~repro.core.units`,
:mod:`~repro.core.distributions`), energy-critical variables
(:mod:`~repro.core.ecv`), composition across the layered system stack
(:mod:`~repro.core.composition`, :mod:`~repro.core.stack`) and energy
contracts (:mod:`~repro.core.contracts`).
"""

from repro.core.attribution import POLICIES, Attribution, attribute
from repro.core.carbon import (
    CarbonAwareScheduler,
    CarbonIntensitySignal,
    SchedulingChoice,
    carbon_of,
    diurnal_grid,
)
from repro.core.composition import (
    BoundInterface,
    OverheadInterface,
    SequenceInterface,
)
from repro.core.contracts import (
    BudgetContract,
    ConstantEnergyContract,
    ContractReport,
    UpperBoundContract,
    check_refinement,
)
from repro.core.distributions import (
    Discrete,
    Empirical,
    EnergyDistribution,
    IndependentSum,
    Mixture,
    Normal,
    PointMass,
    Scaled,
    Uniform,
    as_distribution,
)
from repro.core.ecv import (
    ECV,
    BernoulliECV,
    CategoricalECV,
    ContinuousECV,
    ECVEnvironment,
    FixedECV,
    UniformIntECV,
)
from repro.core.errors import (
    ERROR_CODES,
    BudgetExceeded,
    CompositionError,
    ContractViolation,
    DeadlineExceeded,
    DegradedResult,
    ECVBindingError,
    EnergyError,
    EvaluationError,
    ExtractionError,
    FaultInjected,
    HardwareError,
    MeasurementError,
    ReproError,
    SchedulerError,
    ServingError,
    UnitMismatchError,
    UnknownECVError,
)
from repro.core.interface import (
    EnergyCall,
    EnergyInterface,
    TraceOutcome,
    active_session,
    enumerate_traces,
    evaluate,
)
from repro.core.policy import (
    DeadlinePolicy,
    DegradePolicy,
    Policy,
    RetryPolicy,
    resolve_policy,
)
from repro.core.power import Power, ProvisioningReport, as_watts, provision
from repro.core.session import (
    AccountingHook,
    EvalHook,
    EvalSession,
    EvalSpan,
    MemoHook,
    SpanRecorder,
    chrome_trace,
    layer_breakdown,
    render_span_tree,
)
from repro.core.report import (
    describe_interface,
    format_comparison,
    format_table,
    render_stack,
)
from repro.core.stack import Layer, Resource, ResourceManager, SystemStack
from repro.core.units import ZERO, AbstractEnergy, Energy, Unit, as_joules

__all__ = [
    # units
    "Energy", "AbstractEnergy", "Unit", "ZERO", "as_joules",
    # distributions
    "EnergyDistribution", "PointMass", "Discrete", "Uniform", "Normal",
    "Empirical", "Mixture", "IndependentSum", "Scaled", "as_distribution",
    # ecv
    "ECV", "BernoulliECV", "CategoricalECV", "FixedECV", "UniformIntECV",
    "ContinuousECV", "ECVEnvironment",
    # interface
    "EnergyInterface", "EnergyCall", "TraceOutcome", "evaluate",
    "enumerate_traces", "active_session",
    # session / spans
    "EvalSession", "EvalHook", "MemoHook", "SpanRecorder", "AccountingHook",
    "EvalSpan", "render_span_tree", "chrome_trace", "layer_breakdown",
    # composition / stack
    "BoundInterface", "OverheadInterface", "SequenceInterface",
    "Resource", "ResourceManager", "Layer", "SystemStack",
    # contracts
    "UpperBoundContract", "BudgetContract", "ConstantEnergyContract",
    "ContractReport", "check_refinement",
    # power / attribution
    "Power", "as_watts", "provision", "ProvisioningReport",
    "Attribution", "attribute", "POLICIES",
    # carbon
    "CarbonIntensitySignal", "diurnal_grid", "carbon_of",
    "CarbonAwareScheduler", "SchedulingChoice",
    # report
    "describe_interface", "format_table", "format_comparison",
    "render_stack",
    # policy
    "Policy", "RetryPolicy", "DeadlinePolicy", "DegradePolicy",
    "resolve_policy",
    # errors
    "ReproError", "EnergyError", "UnitMismatchError", "UnknownECVError",
    "ECVBindingError", "EvaluationError", "ContractViolation",
    "CompositionError", "ExtractionError", "HardwareError",
    "MeasurementError", "SchedulerError", "ServingError", "BudgetExceeded",
    "FaultInjected", "DeadlineExceeded", "DegradedResult", "ERROR_CODES",
]
