"""Random variables for energy values.

When an energy interface depends on energy-critical variables (ECVs, §3 of
the paper), its return value is a *probability distribution* over energies
rather than a single number.  This module provides a small, exact-where-
possible distribution algebra used by the interface evaluator:

* closed-form ``mean`` / ``variance`` for every distribution type,
* ``upper_bound`` / ``lower_bound`` for worst-case (contract) reasoning,
* independent sums and scalar scaling (returned lazily, with moments
  propagated exactly),
* mixtures (the natural outcome of enumerating discrete ECVs, via the law
  of total variance),
* Monte-Carlo sampling and quantiles for anything without a closed form.

All values are in Joules (plain floats internally); :func:`as_distribution`
coerces :class:`~repro.core.units.Energy` and bare numbers to point masses
so interface code can freely mix deterministic and probabilistic returns.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence, Union

import numpy as np

from repro.core.errors import ECVBindingError, EvaluationError
from repro.core.units import Energy

__all__ = [
    "EnergyDistribution",
    "PointMass",
    "Discrete",
    "Uniform",
    "Normal",
    "Empirical",
    "Mixture",
    "IndependentSum",
    "Scaled",
    "as_distribution",
]

EnergyLike = Union["EnergyDistribution", Energy, float, int]


def _resolve_quantile_samples(n_samples: int | None) -> int:
    """Resolve a quantile sampling budget.

    ``None`` defers to the active session's ``n_samples`` budget so one
    knob governs every Monte Carlo approximation in an evaluation, with
    ``EvalSession.DEFAULT_QUANTILE_SAMPLES`` as the session-less default.
    """
    if n_samples is not None:
        return int(n_samples)
    from repro.core.interface import active_session
    from repro.core.session import EvalSession
    session = active_session()
    if session is not None:
        return int(session.n_samples)
    return int(EvalSession.DEFAULT_QUANTILE_SAMPLES)


class EnergyDistribution:
    """Abstract base class for distributions over energy (Joules).

    Subclasses implement :meth:`mean`, :meth:`variance`,
    :meth:`lower_bound`, :meth:`upper_bound` and :meth:`sample`.
    """

    def mean(self) -> float:
        """Expected energy in Joules."""
        raise NotImplementedError

    def variance(self) -> float:
        """Variance of the energy in Joules squared."""
        raise NotImplementedError

    def std(self) -> float:
        """Standard deviation in Joules."""
        return math.sqrt(max(self.variance(), 0.0))

    def lower_bound(self) -> float:
        """Infimum of the support (may be ``-inf``)."""
        raise NotImplementedError

    def upper_bound(self) -> float:
        """Supremum of the support (may be ``+inf``).

        This is the value worst-case contracts reason about.
        """
        raise NotImplementedError

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` independent samples as a numpy array."""
        raise NotImplementedError

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Bulk-sampling alias used by the Monte Carlo engine.

        Energy distributions have always drawn in bulk via
        :meth:`sample`; this alias gives them the same ``sample_n``
        protocol as :class:`~repro.core.ecv.ECV` so the engine treats
        ECV columns and outcome distributions uniformly.
        """
        return self.sample(rng, int(n))

    def quantile(self, q: float, rng: np.random.Generator | None = None,
                 n_samples: int | None = None) -> float:
        """Approximate the ``q``-quantile by Monte Carlo.

        The sampling-based-quantile contract: ``n_samples`` is a *budget*
        for the Monte Carlo approximation.  When ``None`` (the default)
        it resolves, in order, to the active
        :class:`~repro.core.session.EvalSession`'s ``n_samples`` budget,
        else to ``EvalSession.DEFAULT_QUANTILE_SAMPLES``.  Subclasses
        with closed-form quantiles override this method and *ignore* the
        budget — it only governs the approximation, never the answer of
        an exact formula.  A deterministic seeded generator is used when
        ``rng`` is not supplied so results are reproducible.
        """
        if not 0.0 <= q <= 1.0:
            raise EvaluationError(f"quantile level must be in [0, 1], got {q}")
        n_samples = _resolve_quantile_samples(n_samples)
        if rng is None:
            rng = np.random.default_rng(0xECF)
        draws = np.sort(self.sample(rng, n_samples))
        index = min(int(q * n_samples), n_samples - 1)
        return float(draws[index])

    def mean_energy(self) -> Energy:
        """Expected energy as an :class:`~repro.core.units.Energy`."""
        return Energy(self.mean())

    # -- algebra ----------------------------------------------------------
    def __add__(self, other: EnergyLike) -> "EnergyDistribution":
        other_dist = as_distribution(other)
        if isinstance(self, PointMass) and isinstance(other_dist, PointMass):
            return PointMass(self._value + other_dist._value)
        if isinstance(self, PointMass) and self._value == 0.0:
            return other_dist
        if isinstance(other_dist, PointMass) and other_dist._value == 0.0:
            return self
        return IndependentSum([self, other_dist])

    def __radd__(self, other: EnergyLike) -> "EnergyDistribution":
        return self.__add__(other)

    def __mul__(self, factor: float) -> "EnergyDistribution":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        if isinstance(self, PointMass):
            return PointMass(self._value * factor)
        return Scaled(self, float(factor))

    __rmul__ = __mul__

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(mean={self.mean():.6g} J, "
                f"std={self.std():.6g} J)")


class PointMass(EnergyDistribution):
    """A deterministic energy value viewed as a degenerate distribution."""

    def __init__(self, value: Union[Energy, float]) -> None:
        self._value = value.as_joules if isinstance(value, Energy) else float(value)

    def mean(self) -> float:
        return self._value

    def variance(self) -> float:
        return 0.0

    def lower_bound(self) -> float:
        return self._value

    def upper_bound(self) -> float:
        return self._value

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return np.full(n, self._value)

    def quantile(self, q: float, rng=None, n_samples: int | None = None) -> float:
        if not 0.0 <= q <= 1.0:
            raise EvaluationError(f"quantile level must be in [0, 1], got {q}")
        return self._value


class Discrete(EnergyDistribution):
    """A finite discrete distribution over energy values."""

    def __init__(self, values: Sequence[float], probabilities: Sequence[float]) -> None:
        if len(values) != len(probabilities):
            raise ECVBindingError("values and probabilities must have equal length")
        if not values:
            raise ECVBindingError("a discrete distribution needs at least one value")
        probs = [float(p) for p in probabilities]
        if any(p < 0 for p in probs):
            raise ECVBindingError("probabilities must be non-negative")
        total = sum(probs)
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
            raise ECVBindingError(f"probabilities must sum to 1, got {total}")
        self._values = np.asarray([float(v) for v in values])
        self._probs = np.asarray(probs) / total
        order = np.argsort(self._values)
        self._values = self._values[order]
        self._probs = self._probs[order]
        self._cum = np.cumsum(self._probs)

    def mean(self) -> float:
        return float(np.dot(self._values, self._probs))

    def variance(self) -> float:
        mu = self.mean()
        return float(np.dot((self._values - mu) ** 2, self._probs))

    def lower_bound(self) -> float:
        return float(self._values[0])

    def upper_bound(self) -> float:
        return float(self._values[-1])

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return rng.choice(self._values, size=n, p=self._probs)

    def quantile(self, q: float, rng=None, n_samples: int | None = None) -> float:
        if not 0.0 <= q <= 1.0:
            raise EvaluationError(f"quantile level must be in [0, 1], got {q}")
        index = bisect.bisect_left(self._cum.tolist(), q - 1e-12)
        index = min(index, len(self._values) - 1)
        return float(self._values[index])

    @property
    def support(self) -> list[tuple[float, float]]:
        """``(value, probability)`` pairs in ascending value order."""
        return list(zip(self._values.tolist(), self._probs.tolist()))


class Uniform(EnergyDistribution):
    """A continuous uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise ECVBindingError(f"uniform bounds inverted: [{low}, {high}]")
        self._low = float(low)
        self._high = float(high)

    def mean(self) -> float:
        return 0.5 * (self._low + self._high)

    def variance(self) -> float:
        return (self._high - self._low) ** 2 / 12.0

    def lower_bound(self) -> float:
        return self._low

    def upper_bound(self) -> float:
        return self._high

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return rng.uniform(self._low, self._high, size=n)

    def quantile(self, q: float, rng=None, n_samples: int | None = None) -> float:
        if not 0.0 <= q <= 1.0:
            raise EvaluationError(f"quantile level must be in [0, 1], got {q}")
        return self._low + q * (self._high - self._low)


class Normal(EnergyDistribution):
    """A normal distribution, optionally truncated to non-negative support.

    Physical energies cannot be negative; ``clip_at_zero=True`` (the
    default) clips samples at zero.  Moments are reported for the
    *unclipped* normal (the clip is a modelling convenience for sensors
    whose noise is small relative to the mean), but the bounds honour the
    clip so worst-case reasoning stays sound.
    """

    def __init__(self, mean: float, std: float, clip_at_zero: bool = True) -> None:
        if std < 0:
            raise ECVBindingError(f"standard deviation must be >= 0, got {std}")
        self._mean = float(mean)
        self._std = float(std)
        self._clip = bool(clip_at_zero)

    def mean(self) -> float:
        return self._mean

    def variance(self) -> float:
        return self._std ** 2

    def lower_bound(self) -> float:
        return 0.0 if self._clip else -math.inf

    def upper_bound(self) -> float:
        return math.inf if self._std > 0 else self._mean

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        draws = rng.normal(self._mean, self._std, size=n)
        if self._clip:
            draws = np.clip(draws, 0.0, None)
        return draws


class Empirical(EnergyDistribution):
    """A distribution backed by observed samples (e.g. measurements)."""

    def __init__(self, samples: Sequence[float]) -> None:
        if len(samples) == 0:
            raise ECVBindingError("an empirical distribution needs samples")
        self._samples = np.sort(np.asarray([float(s) for s in samples]))

    def mean(self) -> float:
        return float(np.mean(self._samples))

    def variance(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        return float(np.var(self._samples, ddof=1))

    def lower_bound(self) -> float:
        return float(self._samples[0])

    def upper_bound(self) -> float:
        return float(self._samples[-1])

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return rng.choice(self._samples, size=n, replace=True)

    def quantile(self, q: float, rng=None, n_samples: int | None = None) -> float:
        if not 0.0 <= q <= 1.0:
            raise EvaluationError(f"quantile level must be in [0, 1], got {q}")
        return float(np.quantile(self._samples, q))

    def __len__(self) -> int:
        return len(self._samples)


class Mixture(EnergyDistribution):
    """A weighted mixture of component distributions.

    This is the distribution produced by enumerating discrete ECV traces:
    each trace yields an outcome distribution with the trace's joint
    probability as its weight.  Moments follow the laws of total
    expectation and total variance, so they are exact.
    """

    def __init__(self, components: Sequence[EnergyDistribution],
                 weights: Sequence[float]) -> None:
        if len(components) != len(weights):
            raise ECVBindingError("components and weights must have equal length")
        if not components:
            raise ECVBindingError("a mixture needs at least one component")
        weights = [float(w) for w in weights]
        if any(w < 0 for w in weights):
            raise ECVBindingError("mixture weights must be non-negative")
        total = sum(weights)
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
            raise ECVBindingError(f"mixture weights must sum to 1, got {total}")
        self._components = list(components)
        self._weights = [w / total for w in weights]

    @classmethod
    def collapse(cls, components: Sequence[EnergyDistribution],
                 weights: Sequence[float]) -> EnergyDistribution:
        """Build a mixture, simplifying the single-component case."""
        if len(components) == 1:
            return components[0]
        return cls(components, weights)

    @property
    def components(self) -> list[tuple[EnergyDistribution, float]]:
        """``(component, weight)`` pairs."""
        return list(zip(self._components, self._weights))

    def mean(self) -> float:
        return sum(w * c.mean() for c, w in zip(self._components, self._weights))

    def variance(self) -> float:
        mu = self.mean()
        second_moment = sum(
            w * (c.variance() + c.mean() ** 2)
            for c, w in zip(self._components, self._weights))
        return max(second_moment - mu ** 2, 0.0)

    def lower_bound(self) -> float:
        return min(c.lower_bound() for c, w in zip(self._components, self._weights)
                   if w > 0)

    def upper_bound(self) -> float:
        return max(c.upper_bound() for c, w in zip(self._components, self._weights)
                   if w > 0)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        choices = rng.choice(len(self._components), size=n, p=self._weights)
        out = np.empty(n)
        for index in np.unique(choices):
            mask = choices == index
            out[mask] = self._components[index].sample(rng, int(mask.sum()))
        return out


class IndependentSum(EnergyDistribution):
    """The sum of independent component distributions.

    Means and variances add exactly under independence; bounds add as
    interval arithmetic.  Sampling draws each component independently.
    Nested sums are flattened so long chains built by repeated ``+`` stay
    shallow.
    """

    def __init__(self, components: Sequence[EnergyDistribution]) -> None:
        if not components:
            raise ECVBindingError("an independent sum needs at least one term")
        flat: list[EnergyDistribution] = []
        constant = 0.0
        for component in components:
            if isinstance(component, IndependentSum):
                flat.extend(component._components)
                constant += component._constant
            elif isinstance(component, PointMass):
                constant += component.mean()
            else:
                flat.append(component)
        self._components = flat
        self._constant = constant

    def mean(self) -> float:
        return self._constant + sum(c.mean() for c in self._components)

    def variance(self) -> float:
        return sum(c.variance() for c in self._components)

    def lower_bound(self) -> float:
        return self._constant + sum(c.lower_bound() for c in self._components)

    def upper_bound(self) -> float:
        return self._constant + sum(c.upper_bound() for c in self._components)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        total = np.full(n, self._constant)
        for component in self._components:
            total += component.sample(rng, n)
        return total


class Scaled(EnergyDistribution):
    """A component distribution scaled by a non-negative constant factor."""

    def __init__(self, base: EnergyDistribution, factor: float) -> None:
        if factor < 0:
            raise ECVBindingError(
                f"energies cannot be scaled by a negative factor ({factor})")
        self._base = base
        self._factor = float(factor)

    def mean(self) -> float:
        return self._factor * self._base.mean()

    def variance(self) -> float:
        return self._factor ** 2 * self._base.variance()

    def lower_bound(self) -> float:
        return self._factor * self._base.lower_bound()

    def upper_bound(self) -> float:
        return self._factor * self._base.upper_bound()

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return self._factor * self._base.sample(rng, n)

    def quantile(self, q: float, rng=None, n_samples: int | None = None) -> float:
        return self._factor * self._base.quantile(q, rng, n_samples)


def as_distribution(value: EnergyLike) -> EnergyDistribution:
    """Coerce energies, numbers and distributions to a distribution.

    * :class:`EnergyDistribution` instances pass through unchanged.
    * :class:`~repro.core.units.Energy` and bare numbers (Joules) become
      point masses.
    """
    if isinstance(value, EnergyDistribution):
        return value
    if isinstance(value, Energy):
        return PointMass(value.as_joules)
    if isinstance(value, (int, float)):
        return PointMass(float(value))
    raise EvaluationError(
        f"cannot interpret {value!r} as an energy distribution; interfaces must "
        "return Energy, a number of Joules, or an EnergyDistribution")
