"""Exception hierarchy for the energy-interfaces framework.

Every error raised by :mod:`repro` derives from :class:`EnergyError` so
callers can catch framework errors without masking programming mistakes.
"""

from __future__ import annotations


class EnergyError(Exception):
    """Base class for all errors raised by the repro framework."""


class UnitMismatchError(EnergyError):
    """Raised when combining abstract energies over incompatible units."""


class UnknownECVError(EnergyError):
    """Raised when an interface reads an ECV that is neither declared nor bound."""


class ECVBindingError(EnergyError):
    """Raised when an ECV binding is malformed (e.g. probability out of range)."""


class EvaluationError(EnergyError):
    """Raised when an energy interface cannot be evaluated."""


class ContractViolation(EnergyError):
    """Raised when an implementation violates an energy contract."""


class CompositionError(EnergyError):
    """Raised when energy interfaces cannot be composed (missing layer, cycle)."""


class ExtractionError(EnergyError):
    """Raised when the analysis toolchain cannot extract an interface."""


class SymbolicExecutionError(ExtractionError):
    """Raised when the symbolic executor meets an unsupported construct."""


class LintError(EnergyError):
    """Raised by the static energy linter on unusable targets or specs."""


class MeasurementError(EnergyError):
    """Raised by simulated measurement channels (NVML/RAPL) on misuse."""


class HardwareError(EnergyError):
    """Raised by the simulated hardware substrate on invalid operations."""


class SchedulerError(EnergyError):
    """Raised by resource managers (schedulers) on invalid placement requests."""


class WorkloadError(EnergyError):
    """Raised by workload generators on invalid parameters."""


class ServingError(EnergyError):
    """Raised by the serving gateway on invalid configuration or state."""


class BudgetError(ServingError):
    """Raised on malformed budget specs or invalid budget operations."""
