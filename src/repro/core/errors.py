"""Exception hierarchy for the energy-interfaces framework.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch framework errors without masking programming mistakes.
Each class carries a stable :attr:`~ReproError.code` string — the same
identifiers the lint/trace JSON schemas use (compare the rule IDs of
:mod:`repro.analysis.lint`), so an error serialised by
:meth:`ReproError.to_dict` can land in the same tooling pipeline as a
lint finding or a divergence report.

Historically the root was called ``EnergyError``; it remains as an alias
subclass of :class:`ReproError`, and a handful of ad-hoc
``ValueError``/``RuntimeError`` raises across ``sim`` and ``analysis``
were migrated to typed subclasses that *also* inherit the builtin they
replaced (:class:`SimTimeError`, :class:`EventStateError`,
:class:`IntervalError`) — existing ``except ValueError`` handlers keep
working, which is the deprecation shim.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ReproError",
    "EnergyError",
    "UnitMismatchError",
    "UnknownECVError",
    "ECVBindingError",
    "EvaluationError",
    "BudgetExceeded",
    "FaultInjected",
    "DeadlineExceeded",
    "DegradedResult",
    "ContractViolation",
    "CompositionError",
    "ExtractionError",
    "SymbolicExecutionError",
    "LintError",
    "RegressError",
    "MeasurementError",
    "CalibrationStale",
    "HardwareError",
    "SchedulerError",
    "WorkloadError",
    "ServingError",
    "BudgetError",
    "SimulationError",
    "SimTimeError",
    "EventStateError",
    "IntervalError",
    "ERROR_CODES",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro framework.

    :attr:`code` is a stable machine-readable identifier (never renamed
    once released) shared with the lint/trace JSON conventions;
    :attr:`severity` feeds the same ``error``/``warning`` levels the
    SARIF export uses.
    """

    code: str = "repro-error"
    severity: str = "error"

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly rendering matching the lint finding schema."""
        return {
            "code": self.code,
            "severity": self.severity,
            "kind": type(self).__name__,
            "message": str(self),
        }


class EnergyError(ReproError):
    """Historical root of the hierarchy; kept as a compatibility alias."""

    code = "energy-error"


class UnitMismatchError(EnergyError):
    """Raised when combining abstract energies over incompatible units."""

    code = "unit-mismatch"


class UnknownECVError(EnergyError):
    """Raised when an interface reads an ECV that is neither declared nor bound."""

    code = "unknown-ecv"


class ECVBindingError(EnergyError):
    """Raised when an ECV binding is malformed (e.g. probability out of range)."""

    code = "ecv-binding"


class EvaluationError(EnergyError):
    """Raised when an energy interface cannot be evaluated."""

    code = "evaluation"


class BudgetExceeded(EvaluationError):
    """Raised when an evaluation or energy budget is exhausted.

    Subclasses :class:`EvaluationError` so pre-existing handlers around
    budgeted evaluations (``AccountingHook``) keep catching it.
    """

    code = "budget-exceeded"


class FaultInjected(EvaluationError):
    """Raised by the fault-injection layer (:mod:`repro.faults`).

    ``site`` names the injection point (``"interface"``, ``"ecv"``,
    ``"hardware"``, ``"mcengine.shard"``, ...) so degradation handlers
    and reports can attribute the failure.
    """

    code = "fault-injected"

    def __init__(self, message: str = "injected fault",
                 site: str | None = None) -> None:
        super().__init__(message)
        self.site = site

    def to_dict(self) -> dict[str, Any]:
        data = super().to_dict()
        data["site"] = self.site
        return data


class DeadlineExceeded(EvaluationError):
    """Raised when an evaluation overruns its configured deadline."""

    code = "deadline-exceeded"

    def __init__(self, message: str = "deadline exceeded",
                 deadline_s: float | None = None,
                 elapsed_s: float | None = None) -> None:
        super().__init__(message)
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s


class ContractViolation(EnergyError):
    """Raised when an implementation violates an energy contract."""

    code = "contract-violation"


class CompositionError(EnergyError):
    """Raised when energy interfaces cannot be composed (missing layer, cycle)."""

    code = "composition"


class ExtractionError(EnergyError):
    """Raised when the analysis toolchain cannot extract an interface."""

    code = "extraction"


class SymbolicExecutionError(ExtractionError):
    """Raised when the symbolic executor meets an unsupported construct."""

    code = "symbolic-execution"


class LintError(EnergyError):
    """Raised by the static energy linter on unusable targets or specs."""

    code = "lint"


class RegressError(LintError):
    """Raised by the differential regression checker: unreadable
    fingerprint baselines, bad commit ranges, or git failures during
    bisection."""

    code = "regress"


class MeasurementError(EnergyError):
    """Raised by simulated measurement channels (NVML/RAPL) on misuse."""

    code = "measurement"


class CalibrationStale(MeasurementError):
    """Typed degradation: a calibrated model no longer matches the device.

    Raised by the calibration guard (:mod:`repro.calibration`) when the
    EWMA of prediction-vs-measurement residuals exceeds the configured
    tolerance — the hardware has drifted past what the frozen unit
    energies can explain.  Consumers (gateway/fleet admission) catch it
    and either widen their worst-case bounds or reject, accounting the
    degradation on their reports; it travels the same fault/policy
    ladder as :class:`FaultInjected`.
    """

    code = "calibration-stale"

    def __init__(self, message: str = "calibration is stale",
                 residual: float | None = None,
                 tolerance: float | None = None,
                 epoch: int | None = None) -> None:
        super().__init__(message)
        self.residual = residual
        self.tolerance = tolerance
        self.epoch = epoch

    def to_dict(self) -> dict[str, Any]:
        data = super().to_dict()
        data["residual"] = self.residual
        data["tolerance"] = self.tolerance
        data["epoch"] = self.epoch
        return data


class HardwareError(EnergyError):
    """Raised by the simulated hardware substrate on invalid operations."""

    code = "hardware"


class SchedulerError(EnergyError):
    """Raised by resource managers (schedulers) on invalid placement requests."""

    code = "scheduler"


class WorkloadError(EnergyError):
    """Raised by workload generators on invalid parameters."""

    code = "workload"


class ServingError(EnergyError):
    """Raised by the serving gateway on invalid configuration or state."""

    code = "serving"


class BudgetError(ServingError):
    """Raised on malformed budget specs or invalid budget operations."""

    code = "budget"


class DegradedResult(ServingError):
    """Typed error carrying a degraded answer when exactness was required.

    Raised by the graceful-degradation ladder when it could only produce
    a fallback estimate (a cached value or a worst-mode bound) and the
    caller asked for strict evaluation.  ``value`` is the degraded
    estimate, ``tier`` names the ladder rung that produced it
    (``"cache"`` or ``"bound"``).
    """

    code = "degraded-result"
    severity = "warning"

    def __init__(self, message: str, value: Any = None,
                 tier: str | None = None) -> None:
        super().__init__(message)
        self.value = value
        self.tier = tier

    def to_dict(self) -> dict[str, Any]:
        data = super().to_dict()
        data["tier"] = self.tier
        return data


# -- migrated ad-hoc builtins -------------------------------------------------
# These double-inherit the builtin they replaced so historical
# ``except ValueError`` / ``except RuntimeError`` handlers keep working.

class SimulationError(EnergyError):
    """Raised by the discrete-event simulation core on invalid operations."""

    code = "simulation"


class SimTimeError(SimulationError, ValueError):
    """Raised when scheduling into the past or with a negative delay."""

    code = "sim-time"


class EventStateError(SimulationError, RuntimeError):
    """Raised on invalid event-lifecycle transitions (double succeed)."""

    code = "event-state"


class IntervalError(ExtractionError, ValueError):
    """Raised by the interval domain on malformed/empty intervals."""

    code = "interval"


def _collect_codes() -> dict[str, type]:
    codes: dict[str, type] = {}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        existing = codes.get(cls.code)
        if existing is not None and existing is not cls:
            raise RuntimeError(
                f"duplicate error code {cls.code!r}: {existing.__name__} "
                f"vs {cls.__name__}")
        codes[cls.code] = cls
        stack.extend(cls.__subclasses__())
    return codes


#: Stable code -> exception class registry (one code per class).
ERROR_CODES: dict[str, type] = _collect_codes()
