"""Discrete-event simulation kernel: engine, events, RNG streams."""

from repro.sim.engine import Engine, Process
from repro.sim.events import Event, Timeout
from repro.sim.rng import RngFactory, derive_seed

__all__ = ["Engine", "Process", "Event", "Timeout", "RngFactory", "derive_seed"]
