"""A compact generator-based discrete-event simulation engine.

The substrate every simulated system in this repository runs on.
Processes are Python generators that ``yield`` the events they wait on
(:class:`~repro.sim.events.Timeout` for delays, any
:class:`~repro.sim.events.Event` for synchronisation); the engine advances
a simulated clock, resuming processes as their events fire.

Design notes:

* Time is a float in **seconds**.  Ties are broken deterministically by
  schedule order, so simulations are reproducible.
* The engine is single-threaded and needs no cooperation beyond
  ``yield``; no wall-clock time is consumed by simulated delays.
* Hardware components (in :mod:`repro.hardware`) do not require the
  engine — they account energy against explicit time intervals — but
  workload simulations (schedulers, request loops) drive those intervals
  from engine time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

from repro.core.errors import SimTimeError
from repro.sim.events import Event, Timeout

__all__ = ["Engine", "Process"]

ProcessGenerator = Generator[Event, Any, None]


class Process(Event):
    """A running simulation process.

    A process is itself an event that succeeds (with the generator's
    return value) when the generator finishes — so processes can wait on
    each other by yielding the :class:`Process` object.
    """

    def __init__(self, engine: "Engine", generator: ProcessGenerator,
                 name: str = "process") -> None:
        super().__init__(name)
        self._engine = engine
        self._generator = generator
        engine._schedule(0.0, self._resume, None)

    def _resume(self, triggering: Event | None) -> None:
        value = triggering.value if triggering is not None else None
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if isinstance(target, Timeout):
            self._engine._schedule(target.delay, self._advance_timeout, target)
        elif isinstance(target, Event):
            target.add_callback(self._resume)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes must "
                f"yield Event or Timeout instances")

    def _advance_timeout(self, timeout: Timeout) -> None:
        timeout.succeed(timeout.value)
        self._resume(timeout)


class Engine:
    """The discrete-event simulation engine: clock plus event queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable, Any]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, delay: float, callback: Callable, argument: Any) -> None:
        if delay < 0:
            raise SimTimeError(f"cannot schedule {delay} s in the past")
        heapq.heappush(self._queue,
                       (self._now + delay, next(self._counter), callback,
                        argument))

    def timeout(self, delay: float, name: str = "timeout") -> Timeout:
        """An event that fires after ``delay`` simulated seconds."""
        return Timeout(delay, name)

    def event(self, name: str = "event") -> Event:
        """A fresh untriggered event."""
        return Event(name)

    def process(self, generator: ProcessGenerator, name: str = "process"
                ) -> Process:
        """Start a process from a generator."""
        return Process(self, generator, name)

    def call_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimTimeError(
                f"cannot schedule at t={time} s, already at t={self._now} s")
        self._schedule(time - self._now, lambda _arg: callback(), None)

    # -- execution --------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Run the simulation.

        With ``until`` set, stops once the clock would pass it (and leaves
        the clock exactly at ``until``); otherwise runs until no events
        remain.  Returns the final simulated time.
        """
        while self._queue:
            time, _seq, callback, argument = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            callback(argument)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_all(self, processes: Iterable[ProcessGenerator],
                until: float | None = None) -> float:
        """Convenience: start all ``processes`` then :meth:`run`."""
        for generator in processes:
            self.process(generator)
        return self.run(until)

    def __repr__(self) -> str:
        return f"Engine(t={self._now:.6g} s, pending={len(self._queue)})"
