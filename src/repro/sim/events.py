"""Event primitives for the discrete-event simulation kernel."""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.core.errors import EventStateError, SimTimeError

__all__ = ["Event", "Timeout"]

_sequence = itertools.count()


class Event:
    """A one-shot occurrence processes can wait on.

    Events succeed at most once, carry an optional value, and notify their
    waiters through callbacks registered by the engine.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value: Any = None
        self._succeeded = False
        self._callbacks: list[Callable[["Event"], None]] = []
        self._sequence = next(_sequence)

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` has been called."""
        return self._succeeded

    def succeed(self, value: Any = None) -> "Event":
        """Mark the event as happened and notify all waiters."""
        if self._succeeded:
            raise EventStateError(f"event {self.name!r} already succeeded")
        self._succeeded = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register a callback; fired immediately if already triggered."""
        if self._succeeded:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        state = "triggered" if self._succeeded else "pending"
        return f"Event({self.name!r}, {state})"


class Timeout(Event):
    """An event that the engine triggers after a simulated delay."""

    def __init__(self, delay: float, name: str = "timeout") -> None:
        super().__init__(name)
        if delay < 0:
            raise SimTimeError(f"timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)
