"""Deterministic random-number streams for reproducible simulations.

Every stochastic element of the simulators (arrival processes, sensor
noise, workload mixes) draws from a named stream derived from a single
root seed, so experiments are reproducible bit-for-bit while independent
subsystems stay statistically independent of each other.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for a named stream from a root seed."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Hands out independent named generators derived from one root seed.

    >>> factory = RngFactory(42)
    >>> arrivals = factory.stream("arrivals")
    >>> noise = factory.stream("sensor-noise")

    The same (seed, name) pair always yields the same stream; different
    names yield independent streams.  Repeated requests for the same name
    return fresh generators positioned at the stream's start, so callers
    should request each stream once and keep it.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)

    def stream(self, name: str) -> np.random.Generator:
        """A generator for the named stream."""
        return np.random.default_rng(derive_seed(self.root_seed, name))

    def child(self, name: str) -> "RngFactory":
        """A factory whose streams are independent of this factory's."""
        return RngFactory(derive_seed(self.root_seed, f"child:{name}"))

    def __repr__(self) -> str:
        return f"RngFactory(root_seed={self.root_seed})"
