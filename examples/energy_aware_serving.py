"""Serving under an energy budget: admission control before dispatch.

Run:  python examples/energy_aware_serving.py

The paper's energy interfaces answer "how much will this cost?" *before*
execution.  This example turns that into an online control loop: a
Poisson stream of key-value requests flows through the
:class:`~repro.serving.gateway.EnergyAwareGateway`, which prices every
request through the store's energy interface (worst case: every put
triggers a garbage-collection storm) and admits, defers or sheds so the
node's *measured* ledger energy stays inside a replenishing budget.

Two runs over the identical arrival stream:

1. **naive FIFO** — every request is admitted; the node blows through
   the budget;
2. **energy-aware** — the gateway holds the same workload inside the
   budget by shedding the requests that would not fit, trading a
   fraction of the offered load for a hard energy guarantee.

The per-request attribution at the end shows where the admitted Joules
went — the report a "cloud energy dashboard" (§6) would render.
"""

from repro.serving import (
    AdmitAllPolicy,
    EnergyAwareGateway,
    EnergyBudget,
    HardBudgetPolicy,
    KVStoreAdapter,
    attribution_report,
    format_report,
    zip_arrivals,
)
from repro.sim.rng import RngFactory
from repro.workloads import kv_request_trace, poisson_arrivals

RATE = 300.0          # requests / second
HORIZON = 10.0        # seconds of traffic
VALUE_BYTES = 256 * 1024
BUDGET_J, REFILL_W = 0.5, 0.25   # allowance = 0.5 J + 0.25 W * elapsed


def run(policy_cls, budget_joules, refill_watts, seed=42):
    adapter = KVStoreAdapter(value_bytes=VALUE_BYTES)
    budget = EnergyBudget("node", capacity_joules=budget_joules,
                          refill_watts=refill_watts)
    gateway = EnergyAwareGateway(adapter, budget, policy_cls())
    rng_factory = RngFactory(seed)
    times = poisson_arrivals(RATE, HORIZON, rng_factory)
    requests = kv_request_trace(len(times), rng_factory.stream("trace"),
                                put_fraction=0.8)
    report = gateway.serve(zip_arrivals(times, requests), horizon=HORIZON)
    return gateway, report


def main():
    print("=== naive FIFO (admit everything) ===")
    _, naive = run(AdmitAllPolicy, budget_joules=1e9, refill_watts=0.0)
    print(format_report(naive, title="naive FIFO"))
    allowance = BUDGET_J + REFILL_W * HORIZON
    print(f"\nburned {naive.ledger_joules:.3f} J against a "
          f"{allowance:.2f} J allowance "
          f"({naive.ledger_joules / allowance:.0%}) — the budget is gone "
          "before the traffic is.")

    print("\n=== energy-aware gateway (hard budget) ===")
    gateway, gated = run(HardBudgetPolicy, BUDGET_J, REFILL_W)
    print(format_report(gated, title="energy-aware gateway"))
    print(f"\nheld {gated.ledger_joules:.3f} J inside the "
          f"{gated.allowance_joules:.2f} J allowance "
          f"({gated.budget_utilisation:.0%} utilisation) by "
          f"serving {gated.admitted}/{gated.offered} requests.")

    print("\n=== where the admitted Joules went ===")
    print(attribution_report(gateway.adapter.machine.ledger,
                             gateway.metrics))


if __name__ == "__main__":
    main()
