"""§1's ClusterFuzz questions, answered before deploying anything.

Run:  python examples/cluster_capacity_planning.py

"What is the optimal number of machines to deploy to minimize energy
consumption while achieving 95% testing coverage?  How much additional
energy is required to increase coverage from 90% to 95% using the same
number of machines?"  — answered by evaluating the campaign's energy
interface over candidate configurations, replacing the deploy-measure-
revise loop the paper criticises.
"""

from repro.apps.fuzzing import (
    CapacityPlanner,
    FuzzingCampaignModel,
    FuzzingEnergyInterface,
)
from repro.core.report import format_table


def main():
    campaign = FuzzingCampaignModel()
    interface = FuzzingEnergyInterface(campaign)
    planner = CapacityPlanner(interface, max_machines=150,
                              deadline_seconds=3 * 86400)

    print("=== Question 1: optimal fleet for 95% coverage "
          "(3-day deadline) ===")
    answer = planner.optimal_fleet(0.95)
    rows = []
    for n in sorted(answer.energy_by_fleet_size):
        if n % 15 == 0 or n == answer.optimal_machines:
            joules = answer.energy_by_fleet_size[n]
            marker = "  <-- optimum" if n == answer.optimal_machines else ""
            days = campaign.time_to_coverage(0.95, n) / 86400
            rows.append([n, f"{joules / 3.6e6:.0f} kWh",
                         f"{days:.2f} d{marker}"])
    print(format_table(["machines", "campaign energy", "duration"], rows))
    print(f"\nanswer: deploy {answer.optimal_machines} machines "
          f"({answer.energy}, {answer.campaign_seconds / 86400:.2f} days)")

    print("\n=== Question 2: marginal energy of the coverage tail ===")
    n = answer.optimal_machines
    rows = []
    for lo, hi in [(0.80, 0.85), (0.85, 0.90), (0.90, 0.95)]:
        marginal = planner.marginal_coverage_energy(lo, hi, n)
        rows.append([f"{lo:.0%} -> {hi:.0%}",
                     f"{marginal.as_kilowatt_hours:.0f} kWh"])
    print(format_table(["coverage step", "marginal energy"], rows))
    print("\nthe last five points cost several times the previous five —"
          "\nworth knowing before anyone files the purchase order.")


if __name__ == "__main__":
    main()
