"""Fig. 1 end to end: the ML web service and its energy interface.

Run:  python examples/ml_webservice.py

Builds the paper's running example — a CNN inference service with a
two-level request cache — on simulated hardware, composes its energy
interface through the Fig. 2 stack (the cache manager binds the hit-rate
ECVs it observes), and validates the interface's predictions against
measured energy.  Finishes with the figure's punchline: the interface
shows that raising cache hits beats optimising the model.
"""

import numpy as np

from repro.apps.mlservice import (
    MLWebService,
    build_service_machine,
    build_service_stack,
)
from repro.calibration import calibrate
from repro.core.ecv import BernoulliECV
from repro.core.interface import evaluate
from repro.core.report import describe_interface, format_comparison, \
    render_stack
from repro.workloads.traces import image_request_trace


def main():
    print("building the service node (CPU + DRAM + NIC + sim4090 GPU)...")
    machine = build_service_machine()
    service = MLWebService(machine)

    print("calibrating the GPU's unit energies via microbenchmarks...")
    model = calibrate(machine, source="gpu0", seed=5).model
    print(model.describe())

    print("\nserving 500 warm-up requests (Zipf-popular images)...")
    rng = np.random.default_rng(11)
    for request in image_request_trace(500, rng):
        service.handle(request)
    bindings = service.observed_bindings()
    print("manager-observed ECVs:",
          {name: f"p={ecv.p:.2f}" for name, ecv in bindings.items()})

    print("\ncomposing the Fig. 2 stack and exporting the interface...")
    stack = build_service_stack(service, model)
    print(render_stack(stack))
    interface = stack.exported_interface("runtime/ml_webservice")
    print(describe_interface(stack.resource(
        "runtime/ml_webservice").energy_interface, include_source=True))

    print("\npredicting vs measuring 300 fresh requests...")
    trace = image_request_trace(300, rng)
    t_start = machine.now
    for request in trace:
        service.handle(request)
    measured = machine.ledger.energy_between(t_start, machine.now)
    predicted = sum(
        evaluate(interface("E_handle", r.image_pixels,
                           r.zero_pixels)).as_joules
        for r in trace)
    print(format_comparison("300 requests", predicted, measured))

    print("\n=== the Fig. 1 punchline, from the interface alone ===")
    probe = (49000, 12000)
    p_hit = bindings["request_hit"].p
    baseline = evaluate(interface("E_handle", *probe)).as_joules
    better_cache = evaluate(
        interface("E_handle", *probe),
        env={"request_hit": BernoulliECV("request_hit",
                                         min(p_hit + 0.2, 1.0))}).as_joules
    print(f"expected energy/request today:        {baseline * 1e3:.2f} mJ")
    print(f"with +20pt cache hit rate:            {better_cache * 1e3:.2f} mJ"
          f"  ({(1 - better_cache / baseline):.1%} saved)")
    print("-> improving cache hits beats shaving the CNN, exactly as the"
          " paper's Fig. 1 discussion suggests.")


if __name__ == "__main__":
    main()
