"""The §4 double workflow: interfaces before code, interfaces from code.

Run:  python examples/design_workflow.py

Walks the full loop the paper envisions for a new module (a telemetry
uploader for an edge device):

1. **interface → implementation**: the designer drafts worst-case energy
   interfaces for the module and its dependencies, and a compatibility
   check proves the composition fits the system's energy envelope before
   any code exists;
2. the module is implemented (against simulated hardware);
3. **implementation → interface**: the toolchain extracts the accurate
   interface from the code (discovering the compression-ratio branch as
   a path condition), and divergence testing confirms code and
   interface agree — then catches a regression when we inject one.
"""

from repro.analysis.extract import extract_interface
from repro.analysis.symbex import ResourceModel
from repro.analysis.verify import divergence_test
from repro.core.contracts import check_refinement
from repro.core.interface import EnergyInterface
from repro.core.units import Energy
from repro.hardware.machine import Machine
from repro.hardware.memory import DRAM, DRAMSpec
from repro.hardware.nic import NIC, NICSpec
from repro.measurement.meter import ledger_meter

DRAM_SPEC = DRAMSpec(e_read_line=15e-9, e_write_line=18e-9,
                     p_refresh_w=0.0, bandwidth_bytes=2e9)
NIC_SPEC = NICSpec(e_per_byte_tx=4e-9, e_per_byte_rx=3e-9, e_wake=0.0,
                   wake_latency=0.0, p_idle_w=0.0, p_off_w=0.0,
                   bandwidth_bytes=20e6)


# ---- step 1: draft interfaces, before implementation ---------------------

class DraftUploaderEnvelope(EnergyInterface):
    """The designer's promise: worst-case energy per upload."""

    def E_upload(self, n_kb):
        # Budget: read everything once, send it uncompressed, plus 20%.
        lines = n_kb * 1024 / 64
        return Energy((lines * DRAM_SPEC.e_read_line
                       + n_kb * 1024 * NIC_SPEC.e_per_byte_tx) * 1.2)


class DepsComposition(EnergyInterface):
    """How the designer plans to combine the dependencies."""

    def E_upload(self, n_kb):
        lines = n_kb * 1024 / 64
        read = lines * DRAM_SPEC.e_read_line
        # compressible payloads send ~40%; incompressible send all
        worst_send = n_kb * 1024 * NIC_SPEC.e_per_byte_tx
        return Energy(read + worst_send)


# ---- step 2: the implementation -------------------------------------------

def uploader(res, n_kb, compressible):
    """Read the buffer, compress if it helps, send."""
    res.dram.read(n_kb)
    if compressible:
        res.nic.send((n_kb * 2) // 5)   # ~40% after compression
    else:
        res.nic.send(n_kb)


class DramIface(EnergyInterface):
    def E_read(self, n_kb):
        return Energy(n_kb * 1024 / 64 * DRAM_SPEC.e_read_line)


class NicIface(EnergyInterface):
    def E_send(self, n_kb):
        return Energy(n_kb * 1024 * NIC_SPEC.e_per_byte_tx)


def main():
    probes = [64, 512, 4096]

    print("=== step 1: compatibility check, before any code ===")
    report = check_refinement(DraftUploaderEnvelope().E_upload,
                              DepsComposition().E_upload, probes)
    print(f"composed dependencies vs drafted envelope: "
          f"{'COMPATIBLE' if report.ok else 'INCOMPATIBLE'} "
          f"({report.checked} probe inputs)")

    print("\n=== step 3a: extract the accurate interface from the code ===")
    extracted = extract_interface(
        uploader, [ResourceModel("dram"), ResourceModel("nic")],
        {"dram": DramIface(), "nic": NicIface()})
    print(extracted.emit_python())

    print("\n=== step 3b: the implementation respects the envelope ===")
    report = check_refinement(DraftUploaderEnvelope().E_upload,
                              lambda n_kb: extracted.E_call(n_kb, False),
                              probes)
    print(f"extracted worst case vs envelope: "
          f"{'OK' if report.ok else 'VIOLATED'}")

    print("\n=== step 3c: divergence testing on real (simulated) hardware ===")
    machine = Machine("edge")
    dram = machine.add(DRAM("dram", DRAM_SPEC))
    nic = machine.add(NIC("nic", NIC_SPEC))
    nic.wake()

    def run_clean(n_kb, compressible):
        dram.access(bytes_read=n_kb * 1024)
        nic.send((n_kb * 2 * 1024) // 5 if compressible else n_kb * 1024)

    meter = ledger_meter(machine)
    result = divergence_test(extracted.E_call, run_clean, meter,
                             inputs=[(512, True), (512, False),
                                     (4096, True)],
                             threshold=0.05)
    print(f"clean implementation: {result}")

    def run_regressed(n_kb, compressible):
        dram.access(bytes_read=n_kb * 1024)
        nic.send(n_kb * 1024)  # regression: compression silently disabled

    result = divergence_test(extracted.E_call, run_regressed, meter,
                             inputs=[(512, True), (4096, True)],
                             threshold=0.05)
    print(f"after a regression:   {result}")
    for bug in result.bugs:
        print(f"  -> {bug}")


if __name__ == "__main__":
    main()
