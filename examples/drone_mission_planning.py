"""Battery-device mission planning from energy interfaces.

Run:  python examples/drone_mission_planning.py

§1 lists drones among the battery devices where energy matters most.
For them, energy clarity answers a feasibility question: *will this
mission complete on this charge, in this weather?*  The mission's energy
interface (with the headwind as an ECV) plus the battery model answer it
before takeoff — expected case, worst case, and the best cruise speed.
"""

from repro.apps.drone import (
    DroneSpec,
    MissionEnergyInterface,
    MissionLeg,
    MissionPlanner,
)
from repro.core.report import format_table
from repro.hardware.battery import Battery, BatterySpec


def main():
    drone = DroneSpec(name="delivery-quad", empty_mass_kg=1.6)
    interface = MissionEnergyInterface(drone, max_headwind_mps=9.0)
    battery = Battery(BatterySpec(name="6s-lipo", capacity_wh=90.0,
                                  reserve_fraction=0.15))
    planner = MissionPlanner(interface, battery)

    print(f"airframe: {drone.name}, battery: {battery}")

    print("\n=== best cruise speed per payload (J/m optimum) ===")
    rows = []
    for payload in (0.0, 0.5, 1.0, 2.0):
        speed = planner.best_speed(payload)
        range_worst = planner.max_range_m(payload, speed) / 1000
        range_expected = planner.max_range_m(payload, speed,
                                             worst_case=False) / 1000
        rows.append([f"{payload:.1f} kg", f"{speed:.0f} m/s",
                     f"{range_expected:.1f} km", f"{range_worst:.1f} km"])
    print(format_table(["payload", "best speed", "range (expected wind)",
                        "range (worst wind)"], rows))

    print("\n=== mission feasibility checks ===")
    missions = {
        "short survey (4 km + 3 min hover)":
            ([MissionLeg(2000, 90), MissionLeg(2000, 90)], 0.4),
        "delivery round trip (9 km, 1 kg out)":
            ([MissionLeg(4500, 45), MissionLeg(4500, 0)], 1.0),
        "long patrol (16 km)":
            ([MissionLeg(4000, 30)] * 4, 0.2),
    }
    for name, (legs, payload) in missions.items():
        speed = planner.best_speed(payload)
        report = planner.check(legs, payload, speed)
        print(f"{name} at {speed:.0f} m/s:\n  {report}")

    print("""
the 'fair weather only' verdict is the interface's contribution: a point
estimate would say GO and a worst-case-only rule would ground flights
that are fine on calm days — the ECV's distribution carries exactly the
information the decision needs.""")


if __name__ == "__main__":
    main()
