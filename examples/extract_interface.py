"""§4.2's toolchain: extract an energy interface from an implementation.

Run:  python examples/extract_interface.py

Symbolically executes a request handler written against abstract
resources, turning it into an executable energy interface: branches on
resource results become ECVs, symbolic loops are summarised, and the
interface can be read back as Fig.-1-style Python.  Ends with the radio
side-effect example — the wake energy charged to the first caller only.
"""

from repro.analysis.extract import extract_interface
from repro.analysis.sideeffects import RADIO_MODEL, analyze_sequence
from repro.analysis.symbex import ResourceModel
from repro.core.ecv import BernoulliECV
from repro.core.interface import EnergyInterface
from repro.core.units import Energy


# ---- the implementation under analysis ---------------------------------

def handle_request(res, image_pixels, n_zeros):
    """Serve one request: cache lookup, CNN inference on miss."""
    hit = res.cache.lookup(image_pixels)
    if hit:
        return 0
    res.gpu.conv2d(image_pixels - n_zeros)
    for _ in range(8):
        res.gpu.relu(256)
    for _ in range(16):
        res.gpu.mlp(256)
    res.cache.store(1024)


def sync_metrics(res, payload_bytes):
    """Periodic telemetry upload over the radio."""
    res.nic.send(payload_bytes)
    res.nic.send(64)  # the ack


# ---- energy interfaces of the resources it calls ------------------------

class CacheIface(EnergyInterface):
    def E_lookup(self, size):
        return Energy.millijoules(0.4)

    def E_store(self, size):
        return Energy.millijoules(0.6)


class GpuIface(EnergyInterface):
    def E_conv2d(self, n):
        return Energy.microjoules(0.8 * n)

    def E_relu(self, n):
        return Energy.nanojoules(40 * n)

    def E_mlp(self, n):
        return Energy.microjoules(1.2 * n)


def main():
    resources = [ResourceModel("cache", returning={"lookup": "bool"}),
                 ResourceModel("gpu")]
    subinterfaces = {"cache": CacheIface(), "gpu": GpuIface()}

    print("=== symbolic extraction ===")
    interface = extract_interface(handle_request, resources, subinterfaces)
    print("the tool emitted this interface from the implementation:\n")
    print(interface.emit_python())

    print("\n=== the extracted interface is executable ===")
    probe = (50176, 12000)  # a 224x224 image, ~24% zeros
    print("worst case (cache miss):",
          interface.worst_case("E_call", *probe))
    print("expected at p(hit)=0.9: ",
          interface.expected("E_call", *probe,
                             env={"cache_lookup_0":
                                  BernoulliECV("cache_lookup_0", 0.9)}))

    print("\n=== side effects: the WiFi radio example (Section 4.2) ===")
    analyses = analyze_sequence([sync_metrics, sync_metrics],
                                [ResourceModel("nic")], [RADIO_MODEL])
    for position, analysis in enumerate(analyses, start=1):
        terms = " + ".join(t.render() for t in analysis.paths[0].energy_terms)
        print(f"app #{position} (radio initially "
              f"{analysis.initial_states['nic']}): {terms}")
    print("-> the first app pays E_nic.wake(); the second rides its "
          "side effect,\n   exactly the paper's smartphone example.")


if __name__ == "__main__":
    main()
