"""Quickstart: write, evaluate and compose an energy interface.

Run:  python examples/quickstart.py

Walks through the core ideas of *The Case for Energy Clarity* in five
minutes: an interface is a little program; ECVs make its answer a
distribution; managers bind ECVs from observation; worst-case evaluation
gives you contracts; abstract units defer the hardware choice.
"""

from repro.core import (
    BernoulliECV,
    BoundInterface,
    BudgetContract,
    Energy,
    EnergyInterface,
    Unit,
    describe_interface,
    evaluate,
)


class CacheLookupInterface(EnergyInterface):
    """Fig. 1's cache lookup: cheap on a local hit, a NIC round-trip
    otherwise.  `local_cache_hit` is an energy-critical variable (ECV):
    state that the input does not determine."""

    def __init__(self):
        super().__init__("redis_cache")
        self.declare_ecv(BernoulliECV(
            "local_cache_hit", p=0.5,
            description="cache hit in current node"))

    def E_lookup(self, response_len):
        per_byte_uj = 5 if self.ecv("local_cache_hit") else 100
        return Energy.microjoules(per_byte_uj * response_len)


def main():
    interface = CacheLookupInterface()

    print("=== the interface is a program you can read ===")
    print(describe_interface(interface))

    print("\n=== evaluation modes ===")
    print("expected (p=0.5):", interface.expected("E_lookup", 1024))
    print("worst case:      ", interface.worst_case("E_lookup", 1024))
    print("best case:       ",
          evaluate(interface("E_lookup", 1024), mode="best"))
    distribution = interface.distribution("E_lookup", 1024)
    print(f"distribution:     mean={distribution.mean():.4g} J, "
          f"std={distribution.std():.4g} J")

    print("\n=== a resource manager binds what it observes ===")
    # The cache manager has watched traffic: 92% of lookups hit locally.
    exported = BoundInterface(interface, {
        "local_cache_hit": BernoulliECV("local_cache_hit", p=0.92)})
    print("expected (manager-bound p=0.92):",
          exported.expected("E_lookup", 1024))
    # A caller can still explore what-ifs: explicit bindings win.
    print("what-if every lookup missed:    ",
          evaluate(exported("E_lookup", 1024),
                   env={"local_cache_hit": False}))

    print("\n=== interfaces as contracts (Section 4.1) ===")
    contract = BudgetContract(Energy.millijoules(120),
                              name="120 mJ per lookup")
    report = contract.check(interface.E_lookup, inputs=[128, 1024, 1400])
    # 1400 bytes can cost 140 mJ on a miss: the worst case breaks the budget
    print(report)
    for violation in report.violations:
        print("  violation:", violation)

    print("\n=== abstract energy units (Section 3) ===")
    cnn_cost = 8 * Unit("conv2d") + 8 * Unit("relu") + 16 * Unit("mlp")
    print("CNN forward pass:", cnn_cost)
    rtx4090_costs = {"conv2d": Energy.microjoules(110),
                     "relu": Energy.microjoules(0.4),
                     "mlp": Energy.microjoules(65)}
    laptop_costs = {"conv2d": Energy.microjoules(260),
                    "relu": Energy.microjoules(1.1),
                    "mlp": Energy.microjoules(150)}
    print("grounded on a 4090-class GPU:", cnn_cost.ground(rtx4090_costs))
    print("grounded on a laptop GPU:    ", cnn_cost.ground(laptop_costs))
    double = 2 * cnn_cost
    print("relative comparison: doubled model costs",
          f"{double.ratio_to(cnn_cost):.1f}x, on ANY hardware")


if __name__ == "__main__":
    main()
