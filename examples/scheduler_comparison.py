"""§1's EAS claim: interface-aware scheduling of bimodal tasks.

Run:  python examples/scheduler_comparison.py

Simulates real-time transcoders (compute bursts alternating with I/O
troughs) on a big.LITTLE machine under four schedulers: the kernel-style
utilisation-EWMA EAS, a peak-clamped variant (how operators protect QoS
today), an energy-interface-aware scheduler, and a perfect oracle.
"""

from repro.apps.transcode import bimodal_transcoder, steady_task
from repro.core.report import format_table
from repro.hardware.profiles import build_big_little
from repro.managers.base import SchedulerSim
from repro.managers.eas import EASScheduler, PeakEASScheduler
from repro.managers.interface_scheduler import (
    InterfaceScheduler,
    OracleScheduler,
)

CORES = ("little0", "little1", "little2", "little3",
         "big0", "big1", "big2", "big3")


def run(scheduler, tasks, quanta=240):
    machine = build_big_little()
    cores = [machine.component(name) for name in CORES]
    sim = SchedulerSim(machine, cores, quantum_seconds=0.05)
    return sim.run(scheduler, tasks, quanta)


def report(title, tasks):
    print(f"\n=== {title} ===")
    rows = []
    for scheduler in (EASScheduler(), PeakEASScheduler(),
                      InterfaceScheduler(), OracleScheduler()):
        result = run(scheduler, tasks)
        rows.append([scheduler.name, f"{result.energy_joules:.2f} J",
                     f"{result.miss_ratio:.1%}",
                     f"{1000 * result.energy_per_work:.2f} mJ/cap-s"])
    print(format_table(["scheduler", "energy", "late work", "energy/work"],
                       rows))


def main():
    transcoders = ([bimodal_transcoder(f"transcoder{i}", burst_util=780,
                                       trough_util=40, burst_quanta=1,
                                       trough_quanta=5, phase_offset=i)
                    for i in range(4)]
                   + [steady_task("background", 100)])
    report("bimodal transcoding (the paper's example)", transcoders)
    print("""
reading the table:
 * plain EAS predicts the bimodal tasks' *average* load, so bursts land
   on under-provisioned cores and ~1 in 5 capacity-seconds runs late;
 * peak-EAS rescues the deadlines by assuming every quantum is a burst,
   paying big-core power through every trough;
 * the interface scheduler asks each task's energy interface what the
   next quantum holds — oracle-equal QoS at oracle-equal energy.""")

    steady = [steady_task(f"steady{i}", 120 + 40 * i) for i in range(4)]
    report("steady control workload (no phase structure)", steady)
    print("""
on steady loads the EWMA is already a perfect predictor, so every
scheduler ties — the interface only wins where there is structure the
proxy cannot see, exactly the paper's argument.""")


if __name__ == "__main__":
    main()
