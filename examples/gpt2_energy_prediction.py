"""The §5 experiment: predicting GPT-2 inference energy (Table 1).

Run:  python examples/gpt2_energy_prediction.py [--gpu sim4090|sim3070]

Reproduces the paper's preliminary experiment end to end on a simulated
GPU: calibrate per-metric unit energies with microbenchmarks, derive the
GPT-2 energy interface from the model architecture, generate text, and
compare the interface's prediction with NVML-measured energy.
"""

import argparse

import numpy as np

from repro.calibration import calibrate
from repro.core.report import format_table
from repro.hardware.profiles import SIM3070, SIM4090, build_gpu_workstation
from repro.llm.config import GPT2_SMALL
from repro.llm.interface import GPT2EnergyInterface
from repro.llm.runtime import GPT2Runtime
from repro.measurement.nvml import NVMLSim

SPECS = {"sim4090": SIM4090, "sim3070": SIM3070}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpu", choices=sorted(SPECS), default="sim4090")
    parser.add_argument("--trials", type=int, default=6)
    parser.add_argument("--max-tokens", type=int, default=200)
    args = parser.parse_args()
    spec = SPECS[args.gpu]

    print(f"bringing up a {spec.name} workstation...")
    machine = build_gpu_workstation(spec)
    gpu = machine.component("gpu0")
    nvml = NVMLSim(gpu, seed=7)

    print("calibrating unit energies (gpu-cache-style microbenchmarks)...")
    model = calibrate(machine, source="gpu0", nvml=nvml, seed=7).model
    print(model.describe())

    runtime = GPT2Runtime(gpu, GPT2_SMALL)
    interface = GPT2EnergyInterface(GPT2_SMALL, model, spec)
    print(f"\nmodel: {GPT2_SMALL.name} "
          f"({GPT2_SMALL.param_count / 1e6:.0f}M parameters)")

    rng = np.random.default_rng(3)
    rows = []
    errors = []
    for trial in range(args.trials):
        n_tokens = int(rng.integers(args.max_tokens // 4,
                                    args.max_tokens + 1))
        prompt_len = int(rng.integers(8, 65))
        gpu.idle(0.05)
        stats = runtime.generate(prompt_len, n_tokens)
        measured = nvml.measure_interval(stats.t_start, stats.t_end)
        predicted = interface.E_generate(prompt_len, n_tokens).as_joules
        error = abs(predicted - measured) / measured
        errors.append(error)
        rows.append([trial, prompt_len, n_tokens, f"{predicted:.3f} J",
                     f"{measured:.3f} J", f"{100 * error:.2f}%"])
    print()
    print(format_table(["trial", "prompt", "tokens", "predicted",
                        "measured", "error"], rows))
    print(f"\naverage error {100 * np.mean(errors):.2f}%, "
          f"max error {100 * np.max(errors):.2f}%")
    paper = {"sim4090": "RTX4090: 0.70% / 0.93%",
             "sim3070": "RTX3070: 6.06% / 8.11%"}
    print(f"paper's Table 1 ({paper[args.gpu]})")

    print("\nper-token view (the interface works for ANY input):")
    for kv_len in (1, 100, 500, 1000):
        energy = interface.E_decode_token(kv_len)
        print(f"  token with {kv_len:4d} tokens of context: {energy}")


if __name__ == "__main__":
    main()
